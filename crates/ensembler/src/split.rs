//! The collaborative-inference split and the wire format for intermediate
//! features.
//!
//! In the paper's setting the client computes `M_c,h(x) + N(0, σ)` locally and
//! ships the resulting feature map to the server. This module provides the
//! byte-level encoding of that payload (used both by the latency accounting in
//! Table III and by tests that exercise a realistic client/server boundary)
//! together with a small wrapper type describing what travels on the wire.

use crate::EnsemblerError;
use ensembler_tensor::{QTensorBatch, Tensor};

/// Magic bytes prefixed to every feature payload so stray buffers are
/// rejected early.
const WIRE_MAGIC: u32 = 0x454E_5342; // "ENSB"

/// Magic bytes prefixed to every quantized feature payload ("ENSQ").
const QWIRE_MAGIC: u32 = 0x454E_5351;

/// An intermediate-feature payload as it travels from the client to the
/// server.
///
/// # Examples
///
/// ```
/// use ensembler::SplitFeatures;
/// use ensembler_tensor::Tensor;
///
/// let features = Tensor::ones(&[2, 4, 8, 8]);
/// let payload = SplitFeatures::new(features.clone());
/// // 4-byte magic + 4-byte rank + four 4-byte dims + f32 data
/// assert_eq!(payload.byte_len(), 4 + 4 + 4 * 4 + 4 * features.len());
/// let decoded = payload.round_trip()?;
/// assert_eq!(decoded, features);
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplitFeatures {
    features: Tensor,
}

impl SplitFeatures {
    /// Wraps a feature tensor for transmission.
    pub fn new(features: Tensor) -> Self {
        Self { features }
    }

    /// The wrapped feature tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Consumes the wrapper, returning the tensor.
    pub fn into_features(self) -> Tensor {
        self.features
    }

    /// Number of bytes this payload occupies on the wire.
    pub fn byte_len(&self) -> usize {
        // magic + rank + dims + f32 data
        4 + 4 + 4 * self.features.rank() + 4 * self.features.len()
    }

    /// Encodes the payload into a byte buffer.
    pub fn encode(&self) -> Vec<u8> {
        encode_features(&self.features)
    }

    /// Encodes and immediately decodes the payload, returning the tensor.
    ///
    /// # Errors
    ///
    /// Propagates any [`EnsemblerError::WireFormat`] error from decoding,
    /// which indicates an internal inconsistency.
    pub fn round_trip(&self) -> Result<Tensor, EnsemblerError> {
        decode_features(&self.encode())
    }
}

/// Serialises a tensor into the client→server wire format: a magic word, the
/// rank, the dimensions and the raw little-endian `f32` data.
pub fn encode_features(features: &Tensor) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 4 * features.rank() + 4 * features.len());
    buf.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
    buf.extend_from_slice(&(features.rank() as u32).to_be_bytes());
    for &d in features.shape() {
        buf.extend_from_slice(&(d as u32).to_be_bytes());
    }
    for &v in features.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Decodes a payload produced by [`encode_features`].
///
/// # Errors
///
/// Returns [`EnsemblerError::WireFormat`] if the buffer is truncated, the
/// magic word is wrong, or the declared shape disagrees with the payload
/// length.
pub fn decode_features(payload: &[u8]) -> Result<Tensor, EnsemblerError> {
    let mut cursor = payload;
    let mut take_u32 = |what: &str| -> Result<u32, EnsemblerError> {
        if cursor.len() < 4 {
            return Err(EnsemblerError::WireFormat(format!(
                "payload truncated inside the {what}"
            )));
        }
        let (head, rest) = cursor.split_at(4);
        cursor = rest;
        Ok(u32::from_be_bytes(head.try_into().expect("4 bytes")))
    };

    if payload.len() < 8 {
        return Err(EnsemblerError::WireFormat(format!(
            "payload of {} bytes is too short for a header",
            payload.len()
        )));
    }
    let magic = take_u32("header")?;
    if magic != WIRE_MAGIC {
        return Err(EnsemblerError::WireFormat(format!(
            "bad magic word {magic:#010x}"
        )));
    }
    let rank = take_u32("header")? as usize;
    if rank > 8 {
        return Err(EnsemblerError::WireFormat(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(take_u32("shape header")? as usize);
    }
    let expected: usize = shape.iter().product();
    if cursor.len() != 4 * expected {
        return Err(EnsemblerError::WireFormat(format!(
            "expected {expected} f32 values, found {} bytes",
            cursor.len()
        )));
    }
    let data = cursor
        .chunks_exact(4)
        .map(|chunk| f32::from_le_bytes(chunk.try_into().expect("4 bytes")))
        .collect();
    Tensor::from_vec(data, &shape).map_err(|e| EnsemblerError::WireFormat(e.to_string()))
}

/// Serialises a quantized feature batch into the v2 wire format: a magic
/// word, the rank, the dimensions (big-endian `u32`), one little-endian
/// `f32` scale per axis-0 sample, then the raw `i8` data — one byte per
/// element instead of the four [`encode_features`] spends, which is what
/// roughly quarters the v2 response frames.
pub fn encode_qfeatures(features: &QTensorBatch) -> Vec<u8> {
    let rank = features.shape().len();
    let mut buf = Vec::with_capacity(8 + 4 * rank + 4 * features.scales().len() + features.len());
    buf.extend_from_slice(&QWIRE_MAGIC.to_be_bytes());
    buf.extend_from_slice(&(rank as u32).to_be_bytes());
    for &d in features.shape() {
        buf.extend_from_slice(&(d as u32).to_be_bytes());
    }
    for &s in features.scales() {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    buf.extend_from_slice(bytemuck_i8(features.data()));
    buf
}

/// Views an `i8` slice as bytes (two's complement, no copy).
fn bytemuck_i8(data: &[i8]) -> &[u8] {
    // i8 and u8 share size and alignment; the cast is always valid.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, data.len()) }
}

/// Decodes a payload produced by [`encode_qfeatures`].
///
/// # Errors
///
/// Returns [`EnsemblerError::WireFormat`] if the buffer is truncated, the
/// magic word is wrong, the rank is implausible or zero, a scale is not
/// finite and positive, or the declared shape disagrees with the payload
/// length.
pub fn decode_qfeatures(payload: &[u8]) -> Result<QTensorBatch, EnsemblerError> {
    let mut cursor = payload;
    let mut take = |n: usize, what: &str| -> Result<&[u8], EnsemblerError> {
        if cursor.len() < n {
            return Err(EnsemblerError::WireFormat(format!(
                "quantized payload truncated inside the {what}"
            )));
        }
        let (head, rest) = cursor.split_at(n);
        cursor = rest;
        Ok(head)
    };

    let magic = u32::from_be_bytes(take(4, "header")?.try_into().expect("4 bytes"));
    if magic != QWIRE_MAGIC {
        return Err(EnsemblerError::WireFormat(format!(
            "bad quantized magic word {magic:#010x}"
        )));
    }
    let rank = u32::from_be_bytes(take(4, "header")?.try_into().expect("4 bytes")) as usize;
    if rank == 0 || rank > 8 {
        return Err(EnsemblerError::WireFormat(format!(
            "implausible quantized tensor rank {rank}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(
            u32::from_be_bytes(take(4, "shape header")?.try_into().expect("4 bytes")) as usize,
        );
    }
    let batch = shape[0];
    // Each sample costs a 4-byte scale, so an absurd batch extent in a tiny
    // frame must be rejected before it can drive the allocation below.
    let remaining = payload.len().saturating_sub(8 + 4 * rank);
    if batch > remaining / 4 {
        return Err(EnsemblerError::WireFormat(format!(
            "quantized payload declares {batch} samples but only {remaining} bytes remain"
        )));
    }
    let mut scales = Vec::with_capacity(batch);
    for _ in 0..batch {
        scales.push(f32::from_le_bytes(
            take(4, "scale field")?.try_into().expect("4 bytes"),
        ));
    }
    let expected: usize = shape.iter().product();
    if cursor.len() != expected {
        return Err(EnsemblerError::WireFormat(format!(
            "expected {expected} i8 values, found {} bytes",
            cursor.len()
        )));
    }
    let data = cursor.iter().map(|&b| b as i8).collect();
    QTensorBatch::from_parts(data, &shape, scales)
        .map_err(|e| EnsemblerError::WireFormat(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_tensor::Rng;

    #[test]
    fn encode_decode_round_trips_exactly() {
        let mut rng = Rng::seed_from(0);
        let t = Tensor::from_fn(&[2, 3, 4, 4], |_| rng.normal());
        let bytes = encode_features(&t);
        let back = decode_features(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn byte_length_matches_encoding() {
        let t = Tensor::ones(&[1, 16, 8, 8]);
        let payload = SplitFeatures::new(t);
        assert_eq!(payload.encode().len(), payload.byte_len());
    }

    #[test]
    fn paper_sized_payload_is_about_64kib_per_image() {
        // CIFAR-10 intermediate features in the paper are [64, 16, 16] f32,
        // i.e. 64 KiB per image before any compression.
        let t = Tensor::zeros(&[1, 64, 16, 16]);
        let payload = SplitFeatures::new(t);
        let body_bytes = 4 * 64 * 16 * 16;
        assert!(payload.byte_len() >= body_bytes);
        assert!(payload.byte_len() < body_bytes + 64);
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let t = Tensor::ones(&[2, 2]);
        let bytes = encode_features(&t);
        assert!(decode_features(&bytes[..bytes.len() - 3]).is_err());
        assert!(decode_features(&bytes[..5]).is_err());
        assert!(decode_features(&[]).is_err());
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let t = Tensor::ones(&[2, 2]);
        let mut bytes = encode_features(&t);
        bytes[0] ^= 0xFF;
        let err = decode_features(&bytes).unwrap_err();
        assert!(matches!(err, EnsemblerError::WireFormat(_)));
    }

    #[test]
    fn implausible_rank_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
        buf.extend_from_slice(&99u32.to_be_bytes());
        let err = decode_features(&buf).unwrap_err();
        assert!(err.to_string().contains("rank"));
    }

    #[test]
    fn quantized_encode_decode_round_trips_exactly() {
        let mut rng = Rng::seed_from(3);
        let t = Tensor::from_fn(&[3, 2, 4, 4], |_| rng.normal());
        let q = QTensorBatch::quantize_batch(&t);
        let back = decode_qfeatures(&encode_qfeatures(&q)).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn quantized_payload_is_roughly_a_quarter_of_f32() {
        let t = Tensor::from_fn(&[1, 16, 8, 8], |i| (i as f32 * 0.01).sin());
        let f32_len = encode_features(&t).len();
        let q_len = encode_qfeatures(&QTensorBatch::quantize_batch(&t)).len();
        assert!(
            (q_len as f64) < 0.3 * f32_len as f64,
            "{q_len} vs {f32_len}"
        );
    }

    #[test]
    fn quantized_decode_rejects_malformed_payloads() {
        let q = QTensorBatch::quantize_batch(&Tensor::ones(&[2, 3]));
        let bytes = encode_qfeatures(&q);
        // Truncated inside the data, the scales and the header.
        assert!(decode_qfeatures(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_qfeatures(&bytes[..10]).is_err());
        assert!(decode_qfeatures(&bytes[..3]).is_err());
        assert!(decode_qfeatures(&[]).is_err());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_qfeatures(&bad).is_err());
        // Garbage scale: NaN is rejected by from_parts.
        let mut bad = bytes.clone();
        let scale_off = 4 + 4 + 2 * 4; // magic + rank + dims
        bad[scale_off..scale_off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = decode_qfeatures(&bad).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        // Zero rank and absurd rank.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&0u32.to_be_bytes());
        assert!(decode_qfeatures(&bad).is_err());
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&99u32.to_be_bytes());
        assert!(decode_qfeatures(&bad).is_err());
        // An absurd batch extent in a tiny payload must be rejected before
        // the scales vector is allocated, not abort on an OOM allocation.
        let mut bad = bytes;
        bad[8..12].copy_from_slice(&u32::MAX.to_be_bytes()); // dim 0
        let err = decode_qfeatures(&bad).unwrap_err();
        assert!(err.to_string().contains("samples"), "{err}");
    }

    #[test]
    fn accessors_expose_the_tensor() {
        let t = Tensor::ones(&[1, 2]);
        let payload = SplitFeatures::new(t.clone());
        assert_eq!(payload.features(), &t);
        assert_eq!(payload.round_trip().unwrap(), t);
        assert_eq!(payload.into_features(), t);
    }
}
