//! A concurrent inference engine over any [`Defense`]: request coalescing,
//! mini-batching and parallel server fan-out from a shared pipeline.
//!
//! This module is the end-to-end demonstration of the paper's deployment
//! argument (Sec. III-D): the `O(N)` server cost of Ensembler "parallelises
//! away" because the `N` bodies are independent. The redesigned [`Defense`]
//! trait makes that concrete — inference takes `&self`, so one pipeline
//! behind an `Arc` can serve many clients at once:
//!
//! * callers submit single `[C, H, W]` images from any thread via
//!   [`InferenceEngine::predict_one`], or single transmitted feature maps via
//!   [`InferenceEngine::server_outputs_one`] (the unit the networked
//!   `DefenseServer` in `crates/serve` forwards for remote clients);
//! * worker threads coalesce queued requests into mini-batches of up to
//!   `max_batch` items (waiting at most `batch_window` for stragglers),
//!   partitioned by kind;
//! * each batch runs one [`Defense::predict`] (or one
//!   [`Defense::server_outputs`]), inside which the `N` server bodies fan out
//!   over the machine's cores ([`ensembler_tensor::par_map`]).
//!
//! # Examples
//!
//! ```
//! use ensembler::{DefenseKind, EngineConfig, InferenceEngine, SinglePipeline};
//! use ensembler_nn::models::ResNetConfig;
//! use ensembler_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let pipeline = Arc::new(SinglePipeline::new(
//!     ResNetConfig::tiny_for_tests(),
//!     DefenseKind::NoDefense,
//!     1,
//! )?);
//! let engine = InferenceEngine::new(pipeline, EngineConfig::default())?;
//! let logits = engine.predict_one(Tensor::ones(&[3, 8, 8]))?;
//! assert_eq!(logits.shape(), &[3]); // tiny_for_tests has 3 classes
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

use crate::defense::Defense;
use crate::EnsemblerError;
use ensembler_tensor::{QTensorBatch, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of an [`InferenceEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of single-image requests coalesced into one batch.
    pub max_batch: usize,
    /// How long a worker waits for additional requests before running a
    /// partially filled batch.
    pub batch_window: Duration,
    /// Number of worker threads executing batches concurrently.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            workers: 1,
        }
    }
}

/// Counters describing what an engine has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Single-image requests answered.
    pub requests_served: u64,
    /// Mini-batches executed.
    pub batches_executed: u64,
    /// Largest batch that was coalesced.
    pub max_batch_observed: u64,
    /// Requests submitted but not yet drained into a worker's mini-batch at
    /// snapshot time. A persistently non-zero depth means the workers cannot
    /// keep up with the arrival rate — the signal the serving layer's
    /// admission control watches for (see `docs/SERVING.md`).
    pub queue_depth: u64,
}

impl EngineStats {
    /// Mean number of requests per executed batch.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_executed == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches_executed as f64
        }
    }
}

/// A submitted-but-not-yet-answered engine request: the completion half of
/// the split submit/wait API ([`InferenceEngine::server_outputs_begin`] and
/// siblings).
///
/// The blocking `*_one` methods are `*_begin(…)?.wait()`. Splitting the two
/// halves is what lets a multiplexed server thread enqueue many pipelined
/// requests in arrival order — so they coalesce into shared mini-batches —
/// and then let each response complete out of order on its own thread.
/// Dropping a `Pending` abandons the request: the worker's answer simply
/// finds no receiver.
#[derive(Debug)]
pub struct Pending<T> {
    receive: Receiver<Result<T, EnsemblerError>>,
}

impl<T> Pending<T> {
    /// Blocks until the worker pool answers this request.
    ///
    /// # Errors
    ///
    /// Returns the evaluation's own error, or [`EnsemblerError::Engine`] if
    /// the engine shut down before answering.
    pub fn wait(self) -> Result<T, EnsemblerError> {
        self.receive
            .recv()
            .map_err(|_| EnsemblerError::Engine("worker dropped the request".to_string()))?
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    queued: AtomicU64,
}

/// One queued unit of work. The engine coalesces both kinds through the same
/// queue; a worker partitions each drained batch by kind before executing it.
enum Work {
    /// A single image awaiting class logits ([`InferenceEngine::predict_one`]).
    Predict {
        image: Tensor,
        respond: Sender<Result<Tensor, EnsemblerError>>,
    },
    /// A single transmitted feature map awaiting the `N` per-network maps
    /// ([`InferenceEngine::server_outputs_one`]) — the unit the networked
    /// `DefenseServer` submits on behalf of remote clients.
    ServerOutputs {
        features: Tensor,
        respond: Sender<Result<Vec<Tensor>, EnsemblerError>>,
    },
    /// A single **quantized** feature map awaiting the `N` quantized
    /// per-network maps ([`InferenceEngine::server_outputs_quantized_one`])
    /// — the unit the networked server submits for protocol-v2 clients.
    /// Scales are per sample, so stacking and splitting quantized batches is
    /// exact and coalescing stays invisible in int8 mode too.
    ServerOutputsQ {
        features: QTensorBatch,
        respond: Sender<Result<Vec<QTensorBatch>, EnsemblerError>>,
    },
    /// A single feature map awaiting the maps of bodies `lo..hi` only
    /// ([`InferenceEngine::server_outputs_range_one`]) — the unit a sharded
    /// worker serves. Requests coalesce only with requests for the *same*
    /// range, so a batch never mixes slices.
    ServerOutputsRange {
        features: Tensor,
        lo: usize,
        hi: usize,
        respond: Sender<Result<Vec<Tensor>, EnsemblerError>>,
    },
    /// The quantized twin of [`Work::ServerOutputsRange`]
    /// ([`InferenceEngine::server_outputs_quantized_range_one`]).
    ServerOutputsRangeQ {
        features: QTensorBatch,
        lo: usize,
        hi: usize,
        respond: Sender<Result<Vec<QTensorBatch>, EnsemblerError>>,
    },
}

/// A thread-safe serving frontend over a shared [`Defense`].
///
/// Dropping the engine shuts it down: the queue is closed and every worker
/// is joined.
///
/// # Examples
///
/// ```
/// use ensembler::{Defense, DefenseKind, EngineConfig, InferenceEngine, SinglePipeline};
/// use ensembler_nn::models::ResNetConfig;
/// use ensembler_tensor::Tensor;
/// use std::sync::Arc;
///
/// let pipeline = Arc::new(SinglePipeline::new(
///     ResNetConfig::tiny_for_tests(),
///     DefenseKind::NoDefense,
///     7,
/// )?);
/// let engine = InferenceEngine::new(pipeline, EngineConfig::default())?;
///
/// // Full predictions coalesce through the queue ...
/// let logits = engine.predict_one(Tensor::ones(&[3, 8, 8]))?;
/// assert_eq!(logits.shape(), &[3]);
///
/// // ... and so do bare server_outputs requests (the networked path): one
/// // transmitted feature map in, N per-network feature maps out.
/// let features = engine.defense().client_features(&Tensor::ones(&[1, 3, 8, 8]))?;
/// let maps = engine.server_outputs_one(features)?;
/// assert_eq!(maps.len(), engine.defense().ensemble_size());
/// # Ok::<(), ensembler::EnsemblerError>(())
/// ```
#[derive(Debug)]
pub struct InferenceEngine<D: Defense + ?Sized + 'static> {
    defense: Arc<D>,
    sender: Option<Sender<Work>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StatsCells>,
}

impl<D: Defense + ?Sized + 'static> InferenceEngine<D> {
    /// Starts an engine serving `defense` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnsemblerError::InvalidConfig`] if `max_batch` or `workers`
    /// is zero.
    pub fn new(defense: Arc<D>, config: EngineConfig) -> Result<Self, EnsemblerError> {
        if config.max_batch == 0 || config.workers == 0 {
            return Err(EnsemblerError::InvalidConfig(
                "engine max_batch and workers must be positive".to_string(),
            ));
        }
        let (sender, receiver) = channel::<Work>();
        let receiver = Arc::new(Mutex::new(receiver));
        let stats = Arc::new(StatsCells::default());
        let workers = (0..config.workers)
            .map(|_| {
                let defense = Arc::clone(&defense);
                let receiver = Arc::clone(&receiver);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&*defense, &receiver, &stats, config))
            })
            .collect();
        Ok(Self {
            defense,
            sender: Some(sender),
            workers,
            stats,
        })
    }

    /// Starts an engine behind an `Arc` — the shape a serving registry that
    /// maps model names to shared engines stores (one engine per model, each
    /// handed to many connection threads).
    ///
    /// # Errors
    ///
    /// As for [`InferenceEngine::new`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler::{Defense, DefenseKind, EngineConfig, InferenceEngine, SinglePipeline};
    /// use ensembler_nn::models::ResNetConfig;
    /// use std::sync::Arc;
    ///
    /// let pipeline: Arc<dyn Defense> = Arc::new(SinglePipeline::new(
    ///     ResNetConfig::tiny_for_tests(),
    ///     DefenseKind::NoDefense,
    ///     1,
    /// )?);
    /// let engine = InferenceEngine::shared(pipeline, EngineConfig::default())?;
    /// let for_a_connection = Arc::clone(&engine); // cheap per-connection handle
    /// assert_eq!(for_a_connection.stats().requests_served, 0);
    /// # Ok::<(), ensembler::EnsemblerError>(())
    /// ```
    pub fn shared(defense: Arc<D>, config: EngineConfig) -> Result<Arc<Self>, EnsemblerError> {
        Ok(Arc::new(Self::new(defense, config)?))
    }

    /// The defence this engine serves.
    pub fn defense(&self) -> &D {
        &self.defense
    }

    /// Classifies one image (`[C, H, W]`, or `[1, C, H, W]` as produced by
    /// [`Tensor::batch_item`]), blocking until a worker has served it as
    /// part of a coalesced mini-batch. Returns the `[num_classes]` logit
    /// vector.
    ///
    /// Safe to call from many threads at once; that is the intended use.
    ///
    /// # Errors
    ///
    /// Returns an error if the image shape is wrong, prediction fails, or
    /// the engine is shutting down.
    pub fn predict_one(&self, image: Tensor) -> Result<Tensor, EnsemblerError> {
        self.predict_begin(image)?.wait()
    }

    /// Enqueues one image for classification without waiting for the answer
    /// — the non-blocking half of [`InferenceEngine::predict_one`].
    ///
    /// # Errors
    ///
    /// Returns an error if the image shape is wrong or the engine is
    /// shutting down; evaluation errors surface from [`Pending::wait`].
    pub fn predict_begin(&self, image: Tensor) -> Result<Pending<Tensor>, EnsemblerError> {
        let image = ensure_single_item("predict_one", "image", image)?;
        let (respond, receive) = channel();
        self.submit(Work::Predict { image, respond })?;
        Ok(Pending { receive })
    }

    /// Evaluates all `N` server bodies on one transmitted feature map
    /// (`[C, H, W]` or `[1, C, H, W]`), blocking until a worker has served it
    /// as part of a coalesced mini-batch. Returns the `N` per-network feature
    /// maps in index order, each with a leading batch axis of 1.
    ///
    /// This is the unit of work the networked `DefenseServer` submits for
    /// remote single-image requests, so feature maps arriving on different
    /// TCP connections coalesce into shared mini-batches exactly like local
    /// [`InferenceEngine::predict_one`] calls do. The result is bit-identical
    /// to an isolated [`Defense::server_outputs`] call on the same map: the
    /// tensor kernels guarantee batch-size-independent results (see
    /// `docs/PERFORMANCE.md`), which is what makes coalescing transparent.
    ///
    /// # Errors
    ///
    /// Returns an error if the feature shape is wrong, the evaluation fails,
    /// or the engine is shutting down.
    pub fn server_outputs_one(&self, features: Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        self.server_outputs_begin(features)?.wait()
    }

    /// Enqueues one transmitted feature map without waiting for the answer —
    /// the non-blocking half of [`InferenceEngine::server_outputs_one`].
    ///
    /// A multiplexed server thread submits every pipelined request through
    /// this in arrival order (so concurrent requests coalesce into shared
    /// mini-batches) and parks each [`Pending`] on its own completion thread,
    /// letting responses finish out of order.
    ///
    /// # Errors
    ///
    /// Returns an error if the feature shape is wrong or the engine is
    /// shutting down; evaluation errors surface from [`Pending::wait`].
    pub fn server_outputs_begin(
        &self,
        features: Tensor,
    ) -> Result<Pending<Vec<Tensor>>, EnsemblerError> {
        let features = ensure_single_item("server_outputs_one", "feature map", features)?;
        let (respond, receive) = channel();
        self.submit(Work::ServerOutputs { features, respond })?;
        Ok(Pending { receive })
    }

    /// Evaluates all `N` server bodies on one quantized transmitted feature
    /// map (`[1, C, H, W]` with its per-sample scale), blocking until a
    /// worker has served it as part of a coalesced mini-batch. Returns the
    /// `N` quantized per-network maps in index order.
    ///
    /// This is the int8 sibling of [`InferenceEngine::server_outputs_one`]
    /// and the unit the networked `DefenseServer` submits for protocol-v2
    /// clients. Because quantization scales are per sample, stacking
    /// requests into a batch and slicing the results back apart moves bytes
    /// verbatim — the answer is bit-identical to an isolated
    /// [`Defense::server_outputs_quantized`] call on the same map.
    ///
    /// # Errors
    ///
    /// Returns an error if the feature batch is not a single rank-4 sample,
    /// the evaluation fails, or the engine is shutting down.
    pub fn server_outputs_quantized_one(
        &self,
        features: QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        self.server_outputs_quantized_begin(features)?.wait()
    }

    /// Enqueues one quantized feature map without waiting for the answer —
    /// the non-blocking half of
    /// [`InferenceEngine::server_outputs_quantized_one`].
    ///
    /// # Errors
    ///
    /// Returns an error if the feature batch is not a single rank-4 sample
    /// or the engine is shutting down; evaluation errors surface from
    /// [`Pending::wait`].
    pub fn server_outputs_quantized_begin(
        &self,
        features: QTensorBatch,
    ) -> Result<Pending<Vec<QTensorBatch>>, EnsemblerError> {
        if features.shape().len() != 4 || features.batch() != 1 {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server_outputs_quantized_one expects one [1, C, H, W] feature map, got {:?}",
                features.shape()
            )));
        }
        let (respond, receive) = channel();
        self.submit(Work::ServerOutputsQ { features, respond })?;
        Ok(Pending { receive })
    }

    /// Evaluates only the server bodies `lo..hi` on one transmitted feature
    /// map — the sharded-worker sibling of
    /// [`InferenceEngine::server_outputs_one`]. Returns the `hi - lo` maps in
    /// index order, each with a leading batch axis of 1.
    ///
    /// Requests coalesce only with other requests for the same `lo..hi`
    /// range, never across ranges, so a mini-batch is always answered by one
    /// [`Defense::server_outputs_range`] call and stays bit-identical to an
    /// isolated evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if the feature shape or the range is wrong, the
    /// evaluation fails, or the engine is shutting down.
    pub fn server_outputs_range_one(
        &self,
        features: Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        self.server_outputs_range_begin(features, lo, hi)?.wait()
    }

    /// Enqueues one sub-range request without waiting for the answer — the
    /// non-blocking half of [`InferenceEngine::server_outputs_range_one`].
    ///
    /// # Errors
    ///
    /// Returns an error if the feature shape or the range is wrong, or the
    /// engine is shutting down; evaluation errors surface from
    /// [`Pending::wait`].
    pub fn server_outputs_range_begin(
        &self,
        features: Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Pending<Vec<Tensor>>, EnsemblerError> {
        crate::check_body_range(lo, hi, self.defense.ensemble_size())?;
        let features = ensure_single_item("server_outputs_range_one", "feature map", features)?;
        let (respond, receive) = channel();
        self.submit(Work::ServerOutputsRange {
            features,
            lo,
            hi,
            respond,
        })?;
        Ok(Pending { receive })
    }

    /// Evaluates only the server bodies `lo..hi` on one quantized feature map
    /// — the quantized twin of [`InferenceEngine::server_outputs_range_one`].
    ///
    /// # Errors
    ///
    /// Returns an error if the feature batch is not a single rank-4 sample,
    /// the range is wrong, the evaluation fails, or the engine is shutting
    /// down.
    pub fn server_outputs_quantized_range_one(
        &self,
        features: QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        self.server_outputs_quantized_range_begin(features, lo, hi)?
            .wait()
    }

    /// Enqueues one quantized sub-range request without waiting for the
    /// answer — the non-blocking half of
    /// [`InferenceEngine::server_outputs_quantized_range_one`].
    ///
    /// # Errors
    ///
    /// Returns an error if the feature batch is not a single rank-4 sample,
    /// the range is wrong, or the engine is shutting down; evaluation errors
    /// surface from [`Pending::wait`].
    pub fn server_outputs_quantized_range_begin(
        &self,
        features: QTensorBatch,
        lo: usize,
        hi: usize,
    ) -> Result<Pending<Vec<QTensorBatch>>, EnsemblerError> {
        crate::check_body_range(lo, hi, self.defense.ensemble_size())?;
        if features.shape().len() != 4 || features.batch() != 1 {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server_outputs_quantized_range_one expects one [1, C, H, W] feature map, got {:?}",
                features.shape()
            )));
        }
        let (respond, receive) = channel();
        self.submit(Work::ServerOutputsRangeQ {
            features,
            lo,
            hi,
            respond,
        })?;
        Ok(Pending { receive })
    }

    /// Enqueues one unit of work for the worker pool.
    fn submit(&self, work: Work) -> Result<(), EnsemblerError> {
        self.stats.queued.fetch_add(1, Ordering::Relaxed);
        self.sender
            .as_ref()
            .expect("sender lives until the engine is dropped")
            .send(work)
            .map_err(|_| {
                self.stats.queued.fetch_sub(1, Ordering::Relaxed);
                EnsemblerError::Engine("request queue is closed".to_string())
            })
    }

    /// Requests currently submitted but not yet drained into a mini-batch.
    ///
    /// This is the live value behind [`EngineStats::queue_depth`], exposed
    /// separately so serving layers can poll it without snapshotting every
    /// counter.
    pub fn queue_depth(&self) -> u64 {
        self.stats.queued.load(Ordering::Relaxed)
    }

    /// Classifies a pre-assembled `[B, C, H, W]` batch directly on the
    /// calling thread, bypassing the queue.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn predict_batch(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.defense.predict(images)
    }

    /// A snapshot of the engine's serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests_served: self.stats.requests.load(Ordering::Relaxed),
            batches_executed: self.stats.batches.load(Ordering::Relaxed),
            max_batch_observed: self.stats.max_batch.load(Ordering::Relaxed),
            queue_depth: self.stats.queued.load(Ordering::Relaxed),
        }
    }
}

impl<D: Defense + ?Sized + 'static> Drop for InferenceEngine<D> {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail, ending its loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Adds a leading batch axis of 1 to a rank-3 tensor, accepts an explicit
/// `[1, ...]` rank-4 tensor, and rejects anything else.
fn ensure_single_item(method: &str, what: &str, item: Tensor) -> Result<Tensor, EnsemblerError> {
    match item.rank() {
        3 => {
            let mut unsqueezed = vec![1];
            unsqueezed.extend_from_slice(item.shape());
            Ok(item
                .reshape(&unsqueezed)
                .expect("adding a batch axis preserves the element count"))
        }
        4 if item.shape()[0] == 1 => Ok(item),
        _ => Err(EnsemblerError::ShapeMismatch(format!(
            "{method} expects one [C, H, W] or [1, C, H, W] {what}, got {:?}",
            item.shape()
        ))),
    }
}

fn worker_loop<D: Defense + ?Sized>(
    defense: &D,
    receiver: &Mutex<Receiver<Work>>,
    stats: &StatsCells,
    config: EngineConfig,
) {
    loop {
        // Collect a batch while holding the queue lock: block for the first
        // request, then drain stragglers until `batch_window` has elapsed
        // since that first arrival (a fixed deadline, so slow trickles cannot
        // keep extending the wait — and the lock — indefinitely).
        let batch = {
            let queue = receiver.lock().expect("queue mutex is never poisoned");
            let first = match queue.recv() {
                Ok(request) => request,
                Err(_) => return, // engine dropped
            };
            let deadline = std::time::Instant::now() + config.batch_window;
            let mut batch = vec![first];
            while batch.len() < config.max_batch {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match queue.recv_timeout(remaining) {
                    Ok(request) => batch.push(request),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            batch
        };
        stats
            .queued
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);

        // The queue mixes all work kinds; each kind batches among itself.
        // Range requests additionally batch per `(lo, hi)` — two different
        // slices must never coalesce into one stacked evaluation.
        let mut predicts = Vec::new();
        let mut outputs = Vec::new();
        let mut outputs_q = Vec::new();
        let mut ranges: std::collections::BTreeMap<(usize, usize), Vec<_>> =
            std::collections::BTreeMap::new();
        let mut ranges_q: std::collections::BTreeMap<(usize, usize), Vec<_>> =
            std::collections::BTreeMap::new();
        for work in batch {
            match work {
                Work::Predict { image, respond } => predicts.push((image, respond)),
                Work::ServerOutputs { features, respond } => outputs.push((features, respond)),
                Work::ServerOutputsQ { features, respond } => outputs_q.push((features, respond)),
                Work::ServerOutputsRange {
                    features,
                    lo,
                    hi,
                    respond,
                } => ranges
                    .entry((lo, hi))
                    .or_default()
                    .push((features, respond)),
                Work::ServerOutputsRangeQ {
                    features,
                    lo,
                    hi,
                    respond,
                } => ranges_q
                    .entry((lo, hi))
                    .or_default()
                    .push((features, respond)),
            }
        }
        if !predicts.is_empty() {
            execute_group(defense, stats, predicts, run_predict_batch);
        }
        if !outputs.is_empty() {
            execute_group(defense, stats, outputs, run_server_outputs_batch);
        }
        if !outputs_q.is_empty() {
            execute_group(defense, stats, outputs_q, run_server_outputs_q_batch);
        }
        for ((lo, hi), group) in ranges {
            execute_group(defense, stats, group, |defense, features| {
                run_server_outputs_range_batch(defense, features, lo, hi)
            });
        }
        for ((lo, hi), group) in ranges_q {
            execute_group(defense, stats, group, |defense, features| {
                run_server_outputs_range_q_batch(defense, features, lo, hi)
            });
        }
    }
}

/// Runs one same-kind group as a single coalesced batch and answers every
/// requester.
///
/// A panicking pipeline (e.g. a shape assert deep in a layer) must not kill
/// the worker: callers would hang forever on an undrained queue. The panic is
/// caught and every request in the group is answered with an error.
fn execute_group<D: Defense + ?Sized, I: Clone, R: Clone>(
    defense: &D,
    stats: &StatsCells,
    group: Vec<(I, Sender<Result<R, EnsemblerError>>)>,
    run: impl Fn(&D, &[I]) -> Result<Vec<R>, EnsemblerError>,
) {
    let inputs: Vec<I> = group.iter().map(|(input, _)| input.clone()).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(defense, &inputs)))
        .unwrap_or_else(|payload| {
            Err(EnsemblerError::Engine(format!(
                "prediction panicked: {}",
                panic_message(payload.as_ref())
            )))
        });
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats
        .requests
        .fetch_add(group.len() as u64, Ordering::Relaxed);
    stats
        .max_batch
        .fetch_max(group.len() as u64, Ordering::Relaxed);

    match result {
        Ok(rows) => {
            for ((_, respond), row) in group.into_iter().zip(rows) {
                let _ = respond.send(Ok(row));
            }
        }
        Err(error) => {
            for (_, respond) in group {
                let _ = respond.send(Err(error.clone()));
            }
        }
    }
}

/// Best-effort human-readable message from a caught panic payload, for
/// converting `std::panic::catch_unwind` results into error values.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("panic payload was not a string")
}

/// Checks that every queued item has the same shape before stacking.
fn ensure_uniform_shapes(inputs: &[Tensor]) -> Result<(), EnsemblerError> {
    let first_shape = inputs[0].shape();
    for input in &inputs[1..] {
        if input.shape() != first_shape {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "cannot batch items of shapes {:?} and {:?}",
                first_shape,
                input.shape()
            )));
        }
    }
    Ok(())
}

/// Stacks the queued images, runs one shared prediction and splits the
/// logits back into per-request rows.
fn run_predict_batch<D: Defense + ?Sized>(
    defense: &D,
    images: &[Tensor],
) -> Result<Vec<Tensor>, EnsemblerError> {
    ensure_uniform_shapes(images)?;
    let stacked = Tensor::stack_batch(images);
    let logits = defense.predict(&stacked)?;
    let classes = logits.shape()[1];
    Ok((0..images.len())
        .map(|row| {
            let data = logits.data()[row * classes..(row + 1) * classes].to_vec();
            Tensor::from_vec(data, &[classes]).expect("row length matches")
        })
        .collect())
}

/// Stacks the queued feature maps, runs one shared [`Defense::server_outputs`]
/// and splits each of the `N` returned maps back into per-request rows (each
/// keeping a leading batch axis of 1).
fn run_server_outputs_batch<D: Defense + ?Sized>(
    defense: &D,
    features: &[Tensor],
) -> Result<Vec<Vec<Tensor>>, EnsemblerError> {
    ensure_uniform_shapes(features)?;
    let stacked = Tensor::stack_batch(features);
    let maps = defense.server_outputs(&stacked)?;
    let rows = features.len();
    for map in &maps {
        if map.shape().first() != Some(&rows) {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server body returned shape {:?} for a batch of {rows} feature maps",
                map.shape()
            )));
        }
    }
    Ok((0..rows)
        .map(|row| {
            maps.iter()
                .map(|map| {
                    let row_len = map.len() / rows;
                    let mut shape = map.shape().to_vec();
                    shape[0] = 1;
                    let data = map.data()[row * row_len..(row + 1) * row_len].to_vec();
                    Tensor::from_vec(data, &shape).expect("row slice matches shape")
                })
                .collect()
        })
        .collect())
}

/// Stacks the queued quantized feature maps (bytes and scales verbatim),
/// runs one shared [`Defense::server_outputs_quantized`] and slices each of
/// the `N` returned quantized maps back into per-request single-sample
/// batches. Every step is exact, so coalescing cannot change an answer.
fn run_server_outputs_q_batch<D: Defense + ?Sized>(
    defense: &D,
    features: &[QTensorBatch],
) -> Result<Vec<Vec<QTensorBatch>>, EnsemblerError> {
    let first_shape = features[0].shape();
    for item in &features[1..] {
        if item.shape() != first_shape {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "cannot batch quantized items of shapes {:?} and {:?}",
                first_shape,
                item.shape()
            )));
        }
    }
    let stacked = QTensorBatch::stack(features);
    let maps = defense.server_outputs_quantized(&stacked)?;
    let rows = features.len();
    for map in &maps {
        if map.batch() != rows {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server body returned shape {:?} for a batch of {rows} quantized feature maps",
                map.shape()
            )));
        }
    }
    Ok((0..rows)
        .map(|row| maps.iter().map(|map| map.sample(row)).collect())
        .collect())
}

/// The `lo..hi` variant of [`run_server_outputs_batch`]: one shared
/// [`Defense::server_outputs_range`] over the stacked maps, split back into
/// per-request rows. Every request in the group asks for the same range.
fn run_server_outputs_range_batch<D: Defense + ?Sized>(
    defense: &D,
    features: &[Tensor],
    lo: usize,
    hi: usize,
) -> Result<Vec<Vec<Tensor>>, EnsemblerError> {
    ensure_uniform_shapes(features)?;
    let stacked = Tensor::stack_batch(features);
    let maps = defense.server_outputs_range(&stacked, lo, hi)?;
    let rows = features.len();
    for map in &maps {
        if map.shape().first() != Some(&rows) {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server body returned shape {:?} for a batch of {rows} feature maps",
                map.shape()
            )));
        }
    }
    Ok((0..rows)
        .map(|row| {
            maps.iter()
                .map(|map| {
                    let row_len = map.len() / rows;
                    let mut shape = map.shape().to_vec();
                    shape[0] = 1;
                    let data = map.data()[row * row_len..(row + 1) * row_len].to_vec();
                    Tensor::from_vec(data, &shape).expect("row slice matches shape")
                })
                .collect()
        })
        .collect())
}

/// The `lo..hi` variant of [`run_server_outputs_q_batch`].
fn run_server_outputs_range_q_batch<D: Defense + ?Sized>(
    defense: &D,
    features: &[QTensorBatch],
    lo: usize,
    hi: usize,
) -> Result<Vec<Vec<QTensorBatch>>, EnsemblerError> {
    let first_shape = features[0].shape();
    for item in &features[1..] {
        if item.shape() != first_shape {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "cannot batch quantized items of shapes {:?} and {:?}",
                first_shape,
                item.shape()
            )));
        }
    }
    let stacked = QTensorBatch::stack(features);
    let maps = defense.server_outputs_quantized_range(&stacked, lo, hi)?;
    let rows = features.len();
    for map in &maps {
        if map.batch() != rows {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "server body returned shape {:?} for a batch of {rows} quantized feature maps",
                map.shape()
            )));
        }
    }
    Ok((0..rows)
        .map(|row| maps.iter().map(|map| map.sample(row)).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defenses::{DefenseKind, SinglePipeline};
    use ensembler_nn::models::ResNetConfig;

    fn tiny_engine(workers: usize, max_batch: usize) -> InferenceEngine<SinglePipeline> {
        let pipeline = Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 3).unwrap(),
        );
        InferenceEngine::new(
            pipeline,
            EngineConfig {
                max_batch,
                batch_window: Duration::from_millis(10),
                workers,
            },
        )
        .unwrap()
    }

    #[test]
    fn configuration_is_validated() {
        let pipeline = Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 3).unwrap(),
        );
        assert!(InferenceEngine::new(
            Arc::clone(&pipeline),
            EngineConfig {
                max_batch: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
        assert!(InferenceEngine::new(
            pipeline,
            EngineConfig {
                workers: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn single_requests_match_direct_batched_prediction() {
        let engine = tiny_engine(1, 4);
        let image_a = Tensor::from_fn(&[3, 8, 8], |i| (i as f32 * 0.01).sin());
        let image_b = Tensor::from_fn(&[3, 8, 8], |i| (i as f32 * 0.02).cos());

        let row_a = engine.predict_one(image_a.clone()).unwrap();
        let row_b = engine.predict_one(image_b.clone()).unwrap();

        let stacked = Tensor::stack_batch(&[
            image_a.reshape(&[1, 3, 8, 8]).unwrap(),
            image_b.reshape(&[1, 3, 8, 8]).unwrap(),
        ]);
        let direct = engine.predict_batch(&stacked).unwrap();
        let classes = direct.shape()[1];
        assert_eq!(row_a.data(), &direct.data()[..classes]);
        assert_eq!(row_b.data(), &direct.data()[classes..]);
    }

    #[test]
    fn rejects_non_image_requests() {
        let engine = tiny_engine(1, 2);
        let err = engine.predict_one(Tensor::ones(&[2, 3, 8, 8])).unwrap_err();
        assert!(matches!(err, EnsemblerError::ShapeMismatch(_)));
    }

    #[test]
    fn concurrent_clients_get_the_same_answers_as_sequential_ones() {
        let engine = Arc::new(tiny_engine(2, 4));
        let images: Vec<Tensor> = (0..12)
            .map(|k| Tensor::from_fn(&[3, 8, 8], |i| ((i + 31 * k) as f32 * 0.013).sin()))
            .collect();
        let sequential: Vec<Tensor> = images
            .iter()
            .map(|img| engine.predict_one(img.clone()).unwrap())
            .collect();

        let concurrent: Vec<Tensor> = std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .iter()
                .map(|img| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || engine.predict_one(img.clone()).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(concurrent, sequential);
        let stats = engine.stats();
        assert_eq!(stats.requests_served, 24);
        assert!(stats.batches_executed >= 1);
        assert!(stats.batches_executed <= stats.requests_served);
        assert!(stats.mean_batch_occupancy() >= 1.0);
        assert!(stats.max_batch_observed >= 1);
        // Every submitted request has been drained and answered.
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn server_outputs_one_matches_direct_evaluation() {
        let engine = tiny_engine(1, 4);
        let image = Tensor::from_fn(&[1, 3, 8, 8], |i| (i as f32 * 0.017).sin());
        let features = engine.defense().client_features(&image).unwrap();
        let coalesced = engine.server_outputs_one(features.clone()).unwrap();
        let direct = engine.defense().server_outputs(&features).unwrap();
        assert_eq!(coalesced, direct);
    }

    #[test]
    fn mixed_work_kinds_coalesce_without_cross_talk() {
        let engine = Arc::new(tiny_engine(2, 8));
        let images: Vec<Tensor> = (0..6)
            .map(|k| Tensor::from_fn(&[3, 8, 8], |i| ((i + 17 * k) as f32 * 0.011).cos()))
            .collect();
        let expected_logits: Vec<Tensor> = images
            .iter()
            .map(|img| engine.predict_one(img.clone()).unwrap())
            .collect();
        let expected_maps: Vec<Vec<Tensor>> = images
            .iter()
            .map(|img| {
                let batched = img.reshape(&[1, 3, 8, 8]).unwrap();
                let features = engine.defense().client_features(&batched).unwrap();
                engine.defense().server_outputs(&features).unwrap()
            })
            .collect();

        std::thread::scope(|scope| {
            let mut logit_handles = Vec::new();
            let mut map_handles = Vec::new();
            for img in &images {
                let predict_engine = Arc::clone(&engine);
                logit_handles
                    .push(scope.spawn(move || predict_engine.predict_one(img.clone()).unwrap()));
                let outputs_engine = Arc::clone(&engine);
                map_handles.push(scope.spawn(move || {
                    let batched = img.reshape(&[1, 3, 8, 8]).unwrap();
                    let features = outputs_engine.defense().client_features(&batched).unwrap();
                    outputs_engine.server_outputs_one(features).unwrap()
                }));
            }
            let logits: Vec<Tensor> = logit_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            let maps: Vec<Vec<Tensor>> =
                map_handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(logits, expected_logits);
            assert_eq!(maps, expected_maps);
        });
    }

    #[test]
    fn quantized_server_outputs_coalesce_bit_exactly() {
        use crate::quant::QuantizedDefense;

        let pipeline = Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 9).unwrap(),
        );
        let int8: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(pipeline));
        let engine = Arc::new(
            InferenceEngine::new(
                Arc::clone(&int8),
                EngineConfig {
                    max_batch: 4,
                    batch_window: Duration::from_millis(10),
                    workers: 2,
                },
            )
            .unwrap(),
        );

        let qfeatures: Vec<QTensorBatch> = (0..6)
            .map(|k| {
                let image = Tensor::from_fn(&[1, 3, 8, 8], |i| ((i + 13 * k) as f32 * 0.02).sin());
                let features = int8.client_features(&image).unwrap();
                QTensorBatch::quantize_batch(&features)
            })
            .collect();
        let expected: Vec<Vec<QTensorBatch>> = qfeatures
            .iter()
            .map(|qf| int8.server_outputs_quantized(qf).unwrap())
            .collect();

        let answers: Vec<Vec<QTensorBatch>> = std::thread::scope(|scope| {
            let handles: Vec<_> = qfeatures
                .iter()
                .map(|qf| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || engine.server_outputs_quantized_one(qf.clone()).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Coalesced quantized answers are byte-identical to isolated calls.
        assert_eq!(answers, expected);
    }

    #[test]
    fn range_requests_coalesce_only_within_their_range() {
        use crate::{EnsemblerPipeline, Selector};
        use ensembler_nn::models::{build_body, build_head, build_tail};
        use ensembler_nn::FixedNoise;
        use ensembler_tensor::Rng;

        let config = ResNetConfig::tiny_for_tests();
        let mut rng = Rng::seed_from(23);
        let head = build_head(&config, &mut rng);
        let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
        let bodies = (0..4).map(|_| build_body(&config, &mut rng)).collect();
        let selector = Selector::random(4, 2, &mut rng).unwrap();
        let tail = build_tail(&config, 2 * config.body_output_features(), &mut rng);
        let pipeline: Arc<dyn Defense> =
            Arc::new(EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap());
        let engine = Arc::new(
            InferenceEngine::new(
                Arc::clone(&pipeline),
                EngineConfig {
                    max_batch: 8,
                    batch_window: Duration::from_millis(10),
                    workers: 2,
                },
            )
            .unwrap(),
        );

        // Concurrent requests for two different slices plus full-ensemble
        // requests: each must get exactly its own slice's answer even when
        // drained into the same worker wake-up.
        let features: Vec<Tensor> = (0..6)
            .map(|k| {
                let image = Tensor::from_fn(&[1, 3, 8, 8], |i| ((i + 7 * k) as f32 * 0.02).sin());
                pipeline.client_features(&image).unwrap()
            })
            .collect();
        let qfeatures: Vec<QTensorBatch> =
            features.iter().map(QTensorBatch::quantize_batch).collect();
        let expected: Vec<(Vec<Tensor>, Vec<Tensor>, Vec<QTensorBatch>)> = features
            .iter()
            .zip(&qfeatures)
            .map(|(f, qf)| {
                (
                    pipeline.server_outputs_range(f, 0, 2).unwrap(),
                    pipeline.server_outputs_range(f, 2, 4).unwrap(),
                    pipeline.server_outputs_quantized_range(qf, 1, 3).unwrap(),
                )
            })
            .collect();

        let answers: Vec<(Vec<Tensor>, Vec<Tensor>, Vec<QTensorBatch>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = features
                    .iter()
                    .zip(&qfeatures)
                    .map(|(f, qf)| {
                        let engine = Arc::clone(&engine);
                        scope.spawn(move || {
                            (
                                engine.server_outputs_range_one(f.clone(), 0, 2).unwrap(),
                                engine.server_outputs_range_one(f.clone(), 2, 4).unwrap(),
                                engine
                                    .server_outputs_quantized_range_one(qf.clone(), 1, 3)
                                    .unwrap(),
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        assert_eq!(answers, expected);

        // Malformed ranges are rejected before touching the queue.
        assert!(engine
            .server_outputs_range_one(features[0].clone(), 2, 2)
            .is_err());
        assert!(engine
            .server_outputs_quantized_range_one(qfeatures[0].clone(), 0, 9)
            .is_err());
    }

    #[test]
    fn begin_and_wait_split_completes_out_of_submission_order() {
        let engine = tiny_engine(2, 4);
        let image = Tensor::from_fn(&[1, 3, 8, 8], |i| (i as f32 * 0.017).sin());
        let features = engine.defense().client_features(&image).unwrap();
        let direct = engine.defense().server_outputs(&features).unwrap();

        // Two pipelined submissions, awaited in reverse order: each Pending
        // holds exactly its own answer.
        let a = engine.server_outputs_begin(features.clone()).unwrap();
        let b = engine.server_outputs_begin(features.clone()).unwrap();
        assert_eq!(b.wait().unwrap(), direct);
        assert_eq!(a.wait().unwrap(), direct);

        // A dropped Pending abandons its request without wedging the engine.
        drop(engine.server_outputs_begin(features.clone()).unwrap());
        assert_eq!(engine.server_outputs_one(features).unwrap(), direct);
    }

    #[test]
    fn quantized_server_outputs_one_rejects_batched_input() {
        let engine = tiny_engine(1, 2);
        let qf = QTensorBatch::quantize_batch(&Tensor::ones(&[2, 3, 4, 4]));
        let err = engine.server_outputs_quantized_one(qf).unwrap_err();
        assert!(matches!(err, EnsemblerError::ShapeMismatch(_)));
    }

    #[test]
    fn server_outputs_one_rejects_batched_input() {
        let engine = tiny_engine(1, 2);
        let err = engine
            .server_outputs_one(Tensor::ones(&[2, 3, 4, 4]))
            .unwrap_err();
        assert!(matches!(err, EnsemblerError::ShapeMismatch(_)));
    }

    #[test]
    fn engine_shuts_down_cleanly_on_drop() {
        let engine = tiny_engine(2, 2);
        let _ = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap();
        drop(engine); // must not hang or panic
    }

    #[test]
    fn a_malformed_shape_is_a_typed_error_and_the_worker_survives() {
        // [4, 8, 8] passes the rank check but has the wrong channel count.
        // The compiled plans turn what used to be a Conv2d panic into a
        // typed shape error, and the single worker keeps serving.
        let engine = tiny_engine(1, 2);
        let err = engine.predict_one(Tensor::ones(&[4, 8, 8])).unwrap_err();
        assert!(
            matches!(err, EnsemblerError::ShapeMismatch(_)),
            "channel mismatch should be a typed shape error, got {err:?}"
        );
        let logits = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap();
        assert_eq!(logits.len(), 3, "worker must still be alive");
    }

    /// A defense whose forward panics unconditionally, standing in for any
    /// bug the shape validation does not catch.
    #[derive(Debug)]
    struct PanickingDefense {
        config: ResNetConfig,
    }

    impl Defense for PanickingDefense {
        fn config(&self) -> &ResNetConfig {
            &self.config
        }

        fn label(&self) -> &str {
            "panicker"
        }

        fn server_bodies(&self) -> &[ensembler_nn::Sequential] {
            &[]
        }

        fn selected_count(&self) -> usize {
            1
        }

        fn client_features(&self, _images: &Tensor) -> Result<Tensor, EnsemblerError> {
            panic!("injected client_features failure")
        }

        fn server_outputs(&self, _transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
            panic!("injected server_outputs failure")
        }

        fn classify(&self, _server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
            panic!("injected classify failure")
        }
    }

    #[test]
    fn a_panicking_prediction_does_not_kill_the_worker() {
        // Shape validation can't catch everything; a genuine panic inside
        // the defense must still surface as an engine error without wedging
        // the worker queue.
        let defense = Arc::new(PanickingDefense {
            config: ResNetConfig::tiny_for_tests(),
        });
        let engine = InferenceEngine::new(
            defense,
            EngineConfig {
                max_batch: 2,
                batch_window: Duration::from_millis(10),
                workers: 1,
            },
        )
        .unwrap();
        let err = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap_err();
        assert!(
            matches!(err, EnsemblerError::Engine(_)),
            "panic should surface as an engine error, got {err:?}"
        );
        // The worker thread survives: a second request gets an answer (the
        // same injected panic) instead of hanging on a dead queue.
        let err = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap_err();
        assert!(matches!(err, EnsemblerError::Engine(_)));
    }
}
