//! A concurrent inference engine over any [`Defense`]: request coalescing,
//! mini-batching and parallel server fan-out from a shared pipeline.
//!
//! This module is the end-to-end demonstration of the paper's deployment
//! argument (Sec. III-D): the `O(N)` server cost of Ensembler "parallelises
//! away" because the `N` bodies are independent. The redesigned [`Defense`]
//! trait makes that concrete — inference takes `&self`, so one pipeline
//! behind an `Arc` can serve many clients at once:
//!
//! * callers submit single `[C, H, W]` images from any thread via
//!   [`InferenceEngine::predict_one`];
//! * worker threads coalesce queued requests into mini-batches of up to
//!   `max_batch` images (waiting at most `batch_window` for stragglers);
//! * each batch runs one [`Defense::predict`], inside which the `N` server
//!   bodies fan out over the machine's cores
//!   ([`ensembler_tensor::par_map`]).
//!
//! # Examples
//!
//! ```
//! use ensembler::{DefenseKind, EngineConfig, InferenceEngine, SinglePipeline};
//! use ensembler_nn::models::ResNetConfig;
//! use ensembler_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let pipeline = Arc::new(SinglePipeline::new(
//!     ResNetConfig::tiny_for_tests(),
//!     DefenseKind::NoDefense,
//!     1,
//! )?);
//! let engine = InferenceEngine::new(pipeline, EngineConfig::default())?;
//! let logits = engine.predict_one(Tensor::ones(&[3, 8, 8]))?;
//! assert_eq!(logits.shape(), &[3]); // tiny_for_tests has 3 classes
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

use crate::defense::Defense;
use crate::EnsemblerError;
use ensembler_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of an [`InferenceEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of single-image requests coalesced into one batch.
    pub max_batch: usize,
    /// How long a worker waits for additional requests before running a
    /// partially filled batch.
    pub batch_window: Duration,
    /// Number of worker threads executing batches concurrently.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            workers: 1,
        }
    }
}

/// Counters describing what an engine has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Single-image requests answered.
    pub requests_served: u64,
    /// Mini-batches executed.
    pub batches_executed: u64,
    /// Largest batch that was coalesced.
    pub max_batch_observed: u64,
}

impl EngineStats {
    /// Mean number of requests per executed batch.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_executed == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches_executed as f64
        }
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

struct Request {
    image: Tensor,
    respond: Sender<Result<Tensor, EnsemblerError>>,
}

/// A thread-safe serving frontend over a shared [`Defense`].
///
/// Dropping the engine shuts it down: the queue is closed and every worker
/// is joined.
#[derive(Debug)]
pub struct InferenceEngine<D: Defense + ?Sized + 'static> {
    defense: Arc<D>,
    sender: Option<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StatsCells>,
}

impl<D: Defense + ?Sized + 'static> InferenceEngine<D> {
    /// Starts an engine serving `defense` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnsemblerError::InvalidConfig`] if `max_batch` or `workers`
    /// is zero.
    pub fn new(defense: Arc<D>, config: EngineConfig) -> Result<Self, EnsemblerError> {
        if config.max_batch == 0 || config.workers == 0 {
            return Err(EnsemblerError::InvalidConfig(
                "engine max_batch and workers must be positive".to_string(),
            ));
        }
        let (sender, receiver) = channel::<Request>();
        let receiver = Arc::new(Mutex::new(receiver));
        let stats = Arc::new(StatsCells::default());
        let workers = (0..config.workers)
            .map(|_| {
                let defense = Arc::clone(&defense);
                let receiver = Arc::clone(&receiver);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&*defense, &receiver, &stats, config))
            })
            .collect();
        Ok(Self {
            defense,
            sender: Some(sender),
            workers,
            stats,
        })
    }

    /// The defence this engine serves.
    pub fn defense(&self) -> &D {
        &self.defense
    }

    /// Classifies one image (`[C, H, W]`, or `[1, C, H, W]` as produced by
    /// [`Tensor::batch_item`]), blocking until a worker has served it as
    /// part of a coalesced mini-batch. Returns the `[num_classes]` logit
    /// vector.
    ///
    /// Safe to call from many threads at once; that is the intended use.
    ///
    /// # Errors
    ///
    /// Returns an error if the image shape is wrong, prediction fails, or
    /// the engine is shutting down.
    pub fn predict_one(&self, image: Tensor) -> Result<Tensor, EnsemblerError> {
        let image = match image.rank() {
            3 => {
                let mut unsqueezed = vec![1];
                unsqueezed.extend_from_slice(image.shape());
                image
                    .reshape(&unsqueezed)
                    .expect("adding a batch axis preserves the element count")
            }
            4 if image.shape()[0] == 1 => image,
            _ => {
                return Err(EnsemblerError::ShapeMismatch(format!(
                    "predict_one expects one [C, H, W] or [1, C, H, W] image, got {:?}",
                    image.shape()
                )))
            }
        };
        let sender = self
            .sender
            .as_ref()
            .expect("sender lives until the engine is dropped");
        let (respond, receive) = channel();
        sender
            .send(Request { image, respond })
            .map_err(|_| EnsemblerError::Engine("request queue is closed".to_string()))?;
        receive
            .recv()
            .map_err(|_| EnsemblerError::Engine("worker dropped the request".to_string()))?
    }

    /// Classifies a pre-assembled `[B, C, H, W]` batch directly on the
    /// calling thread, bypassing the queue.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn predict_batch(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.defense.predict(images)
    }

    /// A snapshot of the engine's serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests_served: self.stats.requests.load(Ordering::Relaxed),
            batches_executed: self.stats.batches.load(Ordering::Relaxed),
            max_batch_observed: self.stats.max_batch.load(Ordering::Relaxed),
        }
    }
}

impl<D: Defense + ?Sized + 'static> Drop for InferenceEngine<D> {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail, ending its loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop<D: Defense + ?Sized>(
    defense: &D,
    receiver: &Mutex<Receiver<Request>>,
    stats: &StatsCells,
    config: EngineConfig,
) {
    loop {
        // Collect a batch while holding the queue lock: block for the first
        // request, then drain stragglers until `batch_window` has elapsed
        // since that first arrival (a fixed deadline, so slow trickles cannot
        // keep extending the wait — and the lock — indefinitely).
        let batch = {
            let queue = receiver.lock().expect("queue mutex is never poisoned");
            let first = match queue.recv() {
                Ok(request) => request,
                Err(_) => return, // engine dropped
            };
            let deadline = std::time::Instant::now() + config.batch_window;
            let mut batch = vec![first];
            while batch.len() < config.max_batch {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match queue.recv_timeout(remaining) {
                    Ok(request) => batch.push(request),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            batch
        };

        // A panicking pipeline (e.g. a shape assert deep in a layer) must not
        // kill the worker: callers would hang forever on an undrained queue.
        // Catch the panic and answer every queued request with an error.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_batch(defense, &batch)))
                .unwrap_or_else(|payload| {
                    let message = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("prediction panicked");
                    Err(EnsemblerError::Engine(format!(
                        "prediction panicked: {message}"
                    )))
                });
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        stats
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);

        match result {
            Ok(rows) => {
                for (request, row) in batch.into_iter().zip(rows) {
                    let _ = request.respond.send(Ok(row));
                }
            }
            Err(error) => {
                for request in batch {
                    let _ = request.respond.send(Err(error.clone()));
                }
            }
        }
    }
}

/// Stacks the queued images, runs one shared prediction and splits the
/// logits back into per-request rows.
fn run_batch<D: Defense + ?Sized>(
    defense: &D,
    batch: &[Request],
) -> Result<Vec<Tensor>, EnsemblerError> {
    let images: Vec<Tensor> = batch.iter().map(|r| r.image.clone()).collect();
    let first_shape = images[0].shape().to_vec();
    for image in &images[1..] {
        if image.shape() != first_shape {
            return Err(EnsemblerError::ShapeMismatch(format!(
                "cannot batch images of shapes {:?} and {:?}",
                first_shape,
                image.shape()
            )));
        }
    }
    let stacked = Tensor::stack_batch(&images);
    let logits = defense.predict(&stacked)?;
    let classes = logits.shape()[1];
    Ok((0..batch.len())
        .map(|row| {
            let data = logits.data()[row * classes..(row + 1) * classes].to_vec();
            Tensor::from_vec(data, &[classes]).expect("row length matches")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defenses::{DefenseKind, SinglePipeline};
    use ensembler_nn::models::ResNetConfig;

    fn tiny_engine(workers: usize, max_batch: usize) -> InferenceEngine<SinglePipeline> {
        let pipeline = Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 3).unwrap(),
        );
        InferenceEngine::new(
            pipeline,
            EngineConfig {
                max_batch,
                batch_window: Duration::from_millis(10),
                workers,
            },
        )
        .unwrap()
    }

    #[test]
    fn configuration_is_validated() {
        let pipeline = Arc::new(
            SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 3).unwrap(),
        );
        assert!(InferenceEngine::new(
            Arc::clone(&pipeline),
            EngineConfig {
                max_batch: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
        assert!(InferenceEngine::new(
            pipeline,
            EngineConfig {
                workers: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn single_requests_match_direct_batched_prediction() {
        let engine = tiny_engine(1, 4);
        let image_a = Tensor::from_fn(&[3, 8, 8], |i| (i as f32 * 0.01).sin());
        let image_b = Tensor::from_fn(&[3, 8, 8], |i| (i as f32 * 0.02).cos());

        let row_a = engine.predict_one(image_a.clone()).unwrap();
        let row_b = engine.predict_one(image_b.clone()).unwrap();

        let stacked = Tensor::stack_batch(&[
            image_a.reshape(&[1, 3, 8, 8]).unwrap(),
            image_b.reshape(&[1, 3, 8, 8]).unwrap(),
        ]);
        let direct = engine.predict_batch(&stacked).unwrap();
        let classes = direct.shape()[1];
        assert_eq!(row_a.data(), &direct.data()[..classes]);
        assert_eq!(row_b.data(), &direct.data()[classes..]);
    }

    #[test]
    fn rejects_non_image_requests() {
        let engine = tiny_engine(1, 2);
        let err = engine.predict_one(Tensor::ones(&[2, 3, 8, 8])).unwrap_err();
        assert!(matches!(err, EnsemblerError::ShapeMismatch(_)));
    }

    #[test]
    fn concurrent_clients_get_the_same_answers_as_sequential_ones() {
        let engine = Arc::new(tiny_engine(2, 4));
        let images: Vec<Tensor> = (0..12)
            .map(|k| Tensor::from_fn(&[3, 8, 8], |i| ((i + 31 * k) as f32 * 0.013).sin()))
            .collect();
        let sequential: Vec<Tensor> = images
            .iter()
            .map(|img| engine.predict_one(img.clone()).unwrap())
            .collect();

        let concurrent: Vec<Tensor> = std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .iter()
                .map(|img| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || engine.predict_one(img.clone()).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(concurrent, sequential);
        let stats = engine.stats();
        assert_eq!(stats.requests_served, 24);
        assert!(stats.batches_executed >= 1);
        assert!(stats.batches_executed <= stats.requests_served);
        assert!(stats.mean_batch_occupancy() >= 1.0);
        assert!(stats.max_batch_observed >= 1);
    }

    #[test]
    fn engine_shuts_down_cleanly_on_drop() {
        let engine = tiny_engine(2, 2);
        let _ = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap();
        drop(engine); // must not hang or panic
    }

    #[test]
    fn a_panicking_prediction_does_not_kill_the_worker() {
        // [4, 8, 8] passes the rank check but trips the Conv2d channel assert
        // deep inside the pipeline. The single worker must survive the panic
        // and keep serving; without the catch, the next request would hang
        // forever on a dead queue.
        let engine = tiny_engine(1, 2);
        let err = engine.predict_one(Tensor::ones(&[4, 8, 8])).unwrap_err();
        assert!(
            matches!(err, EnsemblerError::Engine(_)),
            "panic should surface as an engine error, got {err:?}"
        );
        let logits = engine.predict_one(Tensor::ones(&[3, 8, 8])).unwrap();
        assert_eq!(logits.len(), 3, "worker must still be alive");
    }
}
