//! Ensembler: a selective-ensemble defence for collaborative inference
//! against model inversion attacks.
//!
//! This crate is the Rust reproduction of the framework proposed in
//! *"Ensembler: Protect Collaborative Inference Privacy from Model Inversion
//! Attack via Selective Ensemble"* (Liu et al., DAC 2025). It builds on the
//! workspace substrates (`ensembler-tensor`, `ensembler-nn`,
//! `ensembler-data`, `ensembler-metrics`) and provides:
//!
//! * [`artifact`] — export/import of pipelines as versioned, checksummed
//!   binary model artifacts ([`save_pipeline`] / [`load_defense`]), the
//!   boundary between training and the serving tier's model lifecycle.
//! * [`defense`] — the unified [`Defense`] trait: one object-safe,
//!   immutable (`&self`), `Result`-returning inference API
//!   (`client_features` → `server_outputs` → `classify`, plus `predict` and
//!   `evaluate`) implemented by every pipeline in the workspace. Attacks,
//!   benchmarks and the latency model all program against `&dyn Defense`.
//! * [`framework`] — [`EnsemblerPipeline`], the N-network inference pipeline
//!   of Fig. 2, with the server bodies fanned out in parallel from `&self`.
//! * [`defenses`] — the baselines the paper compares against (no protection,
//!   a single noisy network, Shredder-style learned noise and the dropout
//!   defence), all behind the same trait as size-1 ensembles.
//! * [`engine`] — [`InferenceEngine`], a concurrent serving frontend that
//!   coalesces single-image requests into mini-batches over a shared
//!   `Arc<dyn Defense>` — the end-to-end demonstration that Ensembler's
//!   `O(N)` server cost parallelises away.
//! * [`selector`] — the client's private [`Selector`] that activates `P` of
//!   the `N` server networks and concatenates their scaled outputs (Eq. 1).
//! * [`quant`] — [`QuantizedDefense`], the int8 serving wrapper: quantized
//!   server bodies plus per-sample-scaled wire tensors, selectable per sweep
//!   via [`EvalConfig`]'s [`Precision`].
//! * [`split`] — the byte-level wire format for the transmitted features
//!   (`f32` and quantized variants).
//! * [`subensemble`] — [`SubEnsembleView`], a pipeline restricted to a
//!   contiguous slice of another pipeline's server bodies: the serving mode
//!   a sharded worker runs in.
//! * [`trainer`] — the three-stage training procedure (Sec. III-C) including
//!   the cosine-similarity regularizer of Eq. 3.
//!
//! # Examples
//!
//! Train a small Ensembler, evaluate it through the [`Defense`] trait and
//! serve concurrent requests with the [`engine`]:
//!
//! ```
//! use ensembler::{
//!     Defense, EngineConfig, EnsemblerTrainer, EvalConfig, InferenceEngine, TrainConfig,
//! };
//! use ensembler_data::SyntheticSpec;
//! use ensembler_nn::models::ResNetConfig;
//! use std::sync::Arc;
//!
//! let data = SyntheticSpec::tiny_for_tests().generate(1);
//! let trainer = EnsemblerTrainer::new(
//!     ResNetConfig::tiny_for_tests(),
//!     TrainConfig::fast_for_tests(),
//! );
//! let pipeline = trainer.train(3, 2, &data.train)?.into_pipeline();
//!
//! // Inference is immutable: the pipeline evaluates from `&self` ...
//! let accuracy = pipeline.evaluate(&data.test, &EvalConfig::default())?;
//! assert!((0.0..=1.0).contains(&accuracy));
//!
//! // ... so it can be shared behind an Arc and served concurrently.
//! let engine = InferenceEngine::new(Arc::new(pipeline), EngineConfig::default())?;
//! let (image, _) = data.test.batch(0, 1);
//! let logits = engine.predict_one(image.batch_item(0))?;
//! assert_eq!(logits.len(), 3);
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

pub mod artifact;
pub mod defense;
pub mod defenses;
pub mod engine;
mod error;
pub mod framework;
mod plans;
pub mod quant;
pub mod selector;
pub mod split;
pub mod subensemble;
pub mod trainer;

pub use artifact::{load_defense, load_pipeline, save_pipeline};
pub use defense::{check_body_range, Defense, EvalConfig, Precision};
pub use defenses::{DefenseKind, SinglePipeline};
pub use engine::{EngineConfig, EngineStats, InferenceEngine, Pending};
pub use error::EnsemblerError;
pub use framework::EnsemblerPipeline;
pub use quant::QuantizedDefense;
pub use selector::Selector;
pub use split::{
    decode_features, decode_qfeatures, encode_features, encode_qfeatures, SplitFeatures,
};
pub use subensemble::SubEnsembleView;
pub use trainer::{EnsemblerTrainer, StageOneNetwork, TrainConfig, TrainReport, TrainedEnsembler};
