//! Ensembler: a selective-ensemble defence for collaborative inference
//! against model inversion attacks.
//!
//! This crate is the Rust reproduction of the framework proposed in
//! *"Ensembler: Protect Collaborative Inference Privacy from Model Inversion
//! Attack via Selective Ensemble"* (Liu et al., DAC 2025). It builds on the
//! workspace substrates (`ensembler-tensor`, `ensembler-nn`,
//! `ensembler-data`, `ensembler-metrics`) and provides:
//!
//! * [`split`] — the classic collaborative-inference split: client head
//!   `M_c,h`, server body `M_s`, client tail `M_c,t`, plus the wire format
//!   used to ship intermediate features to the server.
//! * [`selector`] — the client's private [`Selector`] that activates `P` of
//!   the `N` server networks and concatenates their scaled outputs (Eq. 1).
//! * [`framework`] — [`EnsemblerPipeline`], the N-network inference pipeline
//!   of Fig. 2.
//! * [`trainer`] — the three-stage training procedure (Sec. III-C) including
//!   the cosine-similarity regularizer of Eq. 3.
//! * [`defenses`] — the baselines the paper compares against: no protection,
//!   a single noisy network, Shredder-style learned noise, and the dropout
//!   defences DR-single / DR-N.
//!
//! # Examples
//!
//! Train a small Ensembler end to end on synthetic data:
//!
//! ```
//! use ensembler::{EnsemblerTrainer, TrainConfig};
//! use ensembler_data::SyntheticSpec;
//! use ensembler_nn::models::ResNetConfig;
//!
//! let data = SyntheticSpec::tiny_for_tests().generate(1);
//! let trainer = EnsemblerTrainer::new(
//!     ResNetConfig::tiny_for_tests(),
//!     TrainConfig::fast_for_tests(),
//! );
//! let trained = trainer.train(3, 2, &data.train)?;
//! let mut pipeline = trained.into_pipeline();
//! let accuracy = pipeline.evaluate(&data.test);
//! assert!((0.0..=1.0).contains(&accuracy));
//! # Ok::<(), ensembler::EnsemblerError>(())
//! ```

#![warn(missing_docs)]

pub mod defenses;
mod error;
pub mod framework;
pub mod selector;
pub mod split;
pub mod trainer;

pub use defenses::{DefenseKind, SinglePipeline};
pub use error::EnsemblerError;
pub use framework::EnsemblerPipeline;
pub use selector::Selector;
pub use split::{decode_features, encode_features, SplitFeatures};
pub use trainer::{EnsemblerTrainer, StageOneNetwork, TrainConfig, TrainReport, TrainedEnsembler};
