//! Property-based tests for the selector, the wire format and the training
//! configuration validation.

use ensembler::{decode_features, encode_features, Selector, TrainConfig};
use ensembler_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn selection() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..12).prop_flat_map(|n| (Just(n), 1usize..=n, any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_selector_is_always_valid((n, p, seed) in selection()) {
        let mut rng = Rng::seed_from(seed);
        let sel = Selector::random(n, p, &mut rng).expect("valid selection sizes");
        prop_assert_eq!(sel.ensemble_size(), n);
        prop_assert_eq!(sel.active_count(), p);
        prop_assert!(sel.active_indices().iter().all(|&i| i < n));
        prop_assert!(sel.active_indices().windows(2).all(|w| w[0] < w[1]));
        prop_assert!((sel.scale() - 1.0 / p as f32).abs() < 1e-6);
        prop_assert!(sel.search_space() >= 1);
    }

    #[test]
    fn combine_output_scales_like_one_over_p((n, p, seed) in selection()) {
        let mut rng = Rng::seed_from(seed);
        let sel = Selector::random(n, p, &mut rng).unwrap();
        let features = 5usize;
        let maps: Vec<Tensor> = (0..n).map(|_| Tensor::ones(&[2, features])).collect();
        let combined = sel.combine(&maps).expect("consistent maps");
        prop_assert_eq!(combined.shape(), &[2, p * features]);
        for v in combined.data() {
            prop_assert!((v - 1.0 / p as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn combine_and_split_gradient_are_adjoint((n, p, seed) in selection()) {
        let mut rng = Rng::seed_from(seed);
        let sel = Selector::random(n, p, &mut rng).unwrap();
        let features = 4usize;
        let maps: Vec<Tensor> = (0..n)
            .map(|_| Tensor::from_fn(&[3, features], |_| rng.uniform(-1.0, 1.0)))
            .collect();
        let combined = sel.combine(&maps).unwrap();
        let grad = Tensor::from_fn(combined.shape(), |_| rng.uniform(-1.0, 1.0));
        let split = sel.split_gradient(&grad, features).unwrap();
        let lhs = combined.dot(&grad);
        let rhs: f32 = maps.iter().zip(&split).map(|(m, g)| m.dot(g)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
        // Inactive networks receive exactly zero gradient.
        for (idx, g) in split.iter().enumerate() {
            if !sel.is_active(idx) {
                prop_assert_eq!(g.norm(), 0.0);
            }
        }
    }

    #[test]
    fn search_space_is_monotone_in_n(p in 1usize..5, n in 5usize..12) {
        let smaller = Selector::from_indices(n, (0..p).collect()).unwrap();
        let larger = Selector::from_indices(n + 1, (0..p).collect()).unwrap();
        prop_assert!(larger.search_space() >= smaller.search_space());
    }

    #[test]
    fn wire_format_round_trips_any_tensor(
        rank_choice in 0usize..3,
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
        seed in any::<u64>()
    ) {
        let shape: Vec<usize> = match rank_choice {
            0 => vec![d0],
            1 => vec![d0, d1],
            _ => vec![d0, d1, d2],
        };
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::from_fn(&shape, |_| rng.normal());
        let bytes = encode_features(&t);
        let back = decode_features(&bytes).expect("round trip succeeds");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn corrupted_wire_payloads_never_panic(
        seed in any::<u64>(),
        cut in 0usize..64,
        flip in 0usize..64
    ) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::from_fn(&[2, 3, 2, 2], |_| rng.normal());
        let mut bytes = encode_features(&t).to_vec();
        if flip < bytes.len() {
            bytes[flip] ^= 0xA5;
        }
        let truncated = &bytes[..bytes.len().saturating_sub(cut)];
        // Must either decode to some tensor or return an error — never panic.
        let _ = decode_features(truncated);
    }

    #[test]
    fn train_config_validation_accepts_positive_settings(
        epochs in 1usize..10,
        batch in 1usize..64,
        lr in 0.001f32..1.0,
        lambda in 0.0f32..10.0,
        sigma in 0.0f32..1.0
    ) {
        let cfg = TrainConfig {
            epochs_stage1: epochs,
            epochs_stage3: epochs,
            batch_size: batch,
            learning_rate: lr,
            lambda,
            sigma,
            seed: 0,
        };
        prop_assert!(cfg.validate().is_ok());
    }
}
