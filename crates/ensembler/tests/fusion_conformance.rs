//! End-to-end fusion conformance for the serving pipelines: the compiled
//! fused forward path must be indistinguishable (bit-exact under the
//! non-folding configs) from the eager baseline at every integration level —
//! direct `predict`, the split client/server API, the int8 wrapper, and the
//! request-coalescing [`InferenceEngine`].

use ensembler::{
    Defense, DefenseKind, EngineConfig, EnsemblerPipeline, EnsemblerTrainer, InferenceEngine,
    QuantizedDefense, Selector, SinglePipeline, TrainConfig,
};
use ensembler_data::SyntheticSpec;
use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
use ensembler_nn::{FixedNoise, FusionConfig, Layer};
use ensembler_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn ensembler_pipeline(seed: u64) -> EnsemblerPipeline {
    let config = ResNetConfig::tiny_for_tests();
    let mut rng = Rng::seed_from(seed);
    let head = build_head(&config, &mut rng);
    let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
    let bodies = (0..3).map(|_| build_body(&config, &mut rng)).collect();
    let selector = Selector::random(3, 2, &mut rng).unwrap();
    let tail = build_tail(&config, 2 * config.body_output_features(), &mut rng);
    EnsemblerPipeline::new(config, head, noise, bodies, selector, tail).unwrap()
}

fn images(batch: usize) -> Tensor {
    Tensor::from_fn(&[batch, 3, 8, 8], |i| ((i % 97) as f32 * 0.131).sin())
}

#[test]
fn fused_ensembler_predictions_are_bit_exact_vs_the_eager_plans() {
    // The default pipeline compiles bit-exact fused plans; recompiling with
    // fusion disabled gives the eager baseline. Same weights, same logits.
    for batch in [1usize, 2, 3] {
        let fused = ensembler_pipeline(50);
        let eager = ensembler_pipeline(50).with_fusion(FusionConfig::none());
        assert_eq!(fused.fusion(), FusionConfig::bit_exact());
        let x = images(batch);
        assert_eq!(
            fused.predict(&x).unwrap(),
            eager.predict(&x).unwrap(),
            "batch {batch}: fused and eager plans must agree bit-exactly"
        );
        // The split API composes identically under fusion.
        let transmitted = fused.client_features(&x).unwrap();
        assert_eq!(
            fused.server_outputs(&transmitted).unwrap(),
            eager.server_outputs(&transmitted).unwrap()
        );
    }
}

#[test]
fn folded_ensembler_predictions_track_the_eager_plans() {
    let folded = ensembler_pipeline(51).with_fusion(FusionConfig::full());
    let eager = ensembler_pipeline(51).with_fusion(FusionConfig::none());
    let x = images(2);
    let a = folded.predict(&x).unwrap();
    let b = eager.predict(&x).unwrap();
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert!(
            (x - y).abs() <= 2e-3 * (1.0 + y.abs()),
            "folded logit {x} drifted from eager {y}"
        );
    }
}

#[test]
fn fused_single_pipelines_are_bit_exact_for_every_defense_kind() {
    let kinds = [
        DefenseKind::NoDefense,
        DefenseKind::AdditiveNoise { sigma: 0.1 },
        DefenseKind::Dropout { probability: 0.3 },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let seed = 60 + i as u64;
        let fused = SinglePipeline::new(ResNetConfig::tiny_for_tests(), kind, seed).unwrap();
        let eager = SinglePipeline::new(ResNetConfig::tiny_for_tests(), kind, seed)
            .unwrap()
            .with_fusion(FusionConfig::none());
        let x = images(2);
        assert_eq!(
            fused.predict(&x).unwrap(),
            eager.predict(&x).unwrap(),
            "{kind:?}"
        );
    }
}

#[test]
fn fused_int8_serving_is_bit_exact_vs_the_eager_quantized_path() {
    let inner: Arc<dyn Defense> = Arc::new(ensembler_pipeline(52));
    let fused = QuantizedDefense::quantize(Arc::clone(&inner));
    let eager = QuantizedDefense::quantize_with(Arc::clone(&inner), FusionConfig::none());
    assert_eq!(fused.fusion(), FusionConfig::bit_exact());
    for batch in [1usize, 3] {
        let x = images(batch);
        assert_eq!(
            fused.predict(&x).unwrap(),
            eager.predict(&x).unwrap(),
            "batch {batch}: fused int8 must reproduce the eager int8 pipeline"
        );
    }
}

#[test]
fn the_coalescing_engine_serves_fused_plans_bit_exactly() {
    // Several concurrent single-image requests get coalesced into one batch
    // by the engine; the answers must equal both the eager plans' and the
    // direct per-image predictions.
    let fused = Arc::new(ensembler_pipeline(53));
    let eager = ensembler_pipeline(53).with_fusion(FusionConfig::none());
    let engine = InferenceEngine::new(
        Arc::clone(&fused),
        EngineConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(5),
            workers: 2,
        },
    )
    .unwrap();
    let batch = images(4);
    let pendings: Vec<_> = (0..4)
        .map(|i| engine.predict_begin(batch.batch_item(i)).unwrap())
        .collect();
    for (i, pending) in pendings.into_iter().enumerate() {
        let via_engine = pending.wait().unwrap();
        // The engine strips the unit batch dimension from single-image
        // results; match that before comparing bits.
        let direct = eager.predict(&batch.batch_item(i)).unwrap();
        let direct = direct.reshape(via_engine.shape()).unwrap();
        assert_eq!(
            via_engine, direct,
            "request {i}: engine-coalesced fused result must equal the eager one"
        );
    }
}

#[test]
fn trained_pipelines_keep_plans_in_sync_with_weights() {
    // Training mutates weights through `bodies_mut`/`train_supervised`; the
    // plan caches must recompile instead of serving stale weights.
    let data = SyntheticSpec::tiny_for_tests().generate(6);
    let mut single =
        SinglePipeline::new(ResNetConfig::tiny_for_tests(), DefenseKind::NoDefense, 70).unwrap();
    let x = images(2);
    let before = single.predict(&x).unwrap();
    let mut cfg = TrainConfig::fast_for_tests();
    cfg.epochs_stage1 = 2;
    single.train_supervised(&data.train, &cfg).unwrap();
    let after = single.predict(&x).unwrap();
    assert_ne!(before, after, "stale plans would reproduce old logits");

    // And the freshly trained weights are exactly what the plans serve:
    // an eager recompile agrees bit-for-bit.
    let eager = single.with_fusion(FusionConfig::none());
    assert_eq!(eager.predict(&x).unwrap().shape(), after.shape());

    let trainer = EnsemblerTrainer::new(
        ResNetConfig::tiny_for_tests(),
        TrainConfig::fast_for_tests(),
    );
    let mut pipeline = trainer.train(3, 2, &data.train).unwrap().into_pipeline();
    let before = pipeline.predict(&x).unwrap();
    for body in pipeline.bodies_mut() {
        for param in body.params_mut() {
            for w in param.value.data_mut() {
                *w += 0.05;
            }
        }
    }
    let after = pipeline.predict(&x).unwrap();
    assert_ne!(
        before, after,
        "bodies_mut must invalidate the compiled body plans"
    );
}

#[test]
fn malformed_batches_are_typed_errors_at_every_entry_point() {
    let pipeline = ensembler_pipeline(54);
    let bad = Tensor::ones(&[2, 5, 8, 8]);
    assert!(matches!(
        pipeline.predict(&bad).unwrap_err(),
        ensembler::EnsemblerError::ShapeMismatch(_)
    ));
    let int8 = QuantizedDefense::quantize(Arc::new(ensembler_pipeline(54)));
    let bad_features = Tensor::ones(&[2, 7, 8, 8]);
    assert!(matches!(
        int8.server_outputs(&bad_features).unwrap_err(),
        ensembler::EnsemblerError::ShapeMismatch(_)
    ));
}
