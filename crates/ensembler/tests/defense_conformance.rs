//! Trait-conformance suite: every pipeline behind the [`Defense`] trait —
//! each `DefenseKind` baseline variant plus the full `EnsemblerPipeline` —
//! must satisfy the same contract:
//!
//! * prediction produces `[batch, num_classes]` finite logits;
//! * inference is deterministic and **immutable** (repeated calls agree);
//! * the split API (`client_features` → `server_outputs` → `classify`)
//!   composes to exactly `predict`;
//! * `evaluate` returns an accuracy in `[0, 1]` for any batch size;
//! * two threads calling `predict` on one shared pipeline concurrently get
//!   results bit-identical to sequential execution.

use ensembler::{Defense, DefenseKind, EnsemblerTrainer, EvalConfig, SinglePipeline, TrainConfig};
use ensembler_data::{Dataset, SyntheticSpec};
use ensembler_nn::models::ResNetConfig;
use ensembler_tensor::Tensor;
use std::sync::Arc;

/// Every defence in the workspace, constructed untrained (conformance does
/// not depend on training) and boxed behind the trait.
fn all_defenses() -> Vec<Box<dyn Defense>> {
    let config = ResNetConfig::tiny_for_tests;
    let kinds = [
        DefenseKind::NoDefense,
        DefenseKind::AdditiveNoise { sigma: 0.1 },
        DefenseKind::Shredder {
            sigma: 0.1,
            expansion: 1.0,
        },
        DefenseKind::Dropout { probability: 0.3 },
    ];
    let mut defenses: Vec<Box<dyn Defense>> = kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            Box::new(SinglePipeline::new(config(), kind, 40 + i as u64).unwrap())
                as Box<dyn Defense>
        })
        .collect();

    let trainer = EnsemblerTrainer::new(config(), TrainConfig::fast_for_tests());
    let data = SyntheticSpec::tiny_for_tests().generate(8);
    defenses.push(Box::new(
        trainer.train(3, 2, &data.train).unwrap().into_pipeline(),
    ));
    defenses
}

fn images(batch: usize) -> Tensor {
    Tensor::from_fn(&[batch, 3, 8, 8], |i| {
        ((i % 97) as f32 * 0.217).sin() * 0.5 + 0.5
    })
}

fn tiny_dataset() -> Dataset {
    let data = SyntheticSpec::tiny_for_tests().generate(12);
    data.test
}

#[test]
fn every_defense_predicts_the_documented_shape() {
    for defense in all_defenses() {
        let logits = defense.predict(&images(4)).unwrap();
        assert_eq!(
            logits.shape(),
            &[4, defense.config().num_classes],
            "{} logits shape",
            defense.label()
        );
        assert!(logits.is_finite(), "{} logits finite", defense.label());
    }
}

#[test]
fn every_defense_is_deterministic_across_calls() {
    for defense in all_defenses() {
        let batch = images(3);
        let first = defense.predict(&batch).unwrap();
        let second = defense.predict(&batch).unwrap();
        assert_eq!(
            first,
            second,
            "{}: inference must be immutable and repeatable",
            defense.label()
        );
    }
}

#[test]
fn the_split_api_composes_to_predict() {
    for defense in all_defenses() {
        let batch = images(2);
        let fused = defense.predict(&batch).unwrap();
        let transmitted = defense.client_features(&batch).unwrap();
        let maps = defense.server_outputs(&transmitted).unwrap();
        assert_eq!(maps.len(), defense.ensemble_size(), "{}", defense.label());
        let split = defense.classify(&maps).unwrap();
        assert_eq!(
            fused,
            split,
            "{}: client/server split must not change results",
            defense.label()
        );
    }
}

#[test]
fn every_defense_evaluates_to_a_probability_for_any_batch_size() {
    let data = tiny_dataset();
    for defense in all_defenses() {
        let default_acc = defense.evaluate(&data, &EvalConfig::default()).unwrap();
        assert!(
            (0.0..=1.0).contains(&default_acc),
            "{} accuracy {default_acc}",
            defense.label()
        );
        // The batch size is a sweep parameter, not a semantic one.
        for batch_size in [1usize, 3, 64] {
            let acc = defense
                .evaluate(&data, &EvalConfig::with_batch_size(batch_size))
                .unwrap();
            assert!(
                (acc - default_acc).abs() < 1e-6,
                "{}: accuracy must not depend on the evaluation batch size \
                 ({acc} at {batch_size} vs {default_acc} at default)",
                defense.label()
            );
        }
    }
}

#[test]
fn selected_count_never_exceeds_the_ensemble() {
    for defense in all_defenses() {
        assert!(defense.ensemble_size() >= 1, "{}", defense.label());
        assert!(
            (1..=defense.ensemble_size()).contains(&defense.selected_count()),
            "{}: P must be in 1..=N",
            defense.label()
        );
        assert_eq!(
            defense.server_bodies().len(),
            defense.ensemble_size(),
            "{}",
            defense.label()
        );
    }
}

#[test]
fn concurrent_predict_from_two_threads_matches_sequential_execution() {
    for defense in all_defenses() {
        let label = defense.label().to_string();
        let shared: Arc<dyn Defense> = Arc::from(defense);
        let batch_a = images(2);
        let batch_b = images(5);
        let sequential_a = shared.predict(&batch_a).unwrap();
        let sequential_b = shared.predict(&batch_b).unwrap();

        let (concurrent_a, concurrent_b) = std::thread::scope(|scope| {
            let defense_a = Arc::clone(&shared);
            let defense_b = Arc::clone(&shared);
            let (ba, bb) = (&batch_a, &batch_b);
            let ha = scope.spawn(move || defense_a.predict(ba).unwrap());
            let hb = scope.spawn(move || defense_b.predict(bb).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });

        assert_eq!(concurrent_a, sequential_a, "{label}: thread A diverged");
        assert_eq!(concurrent_b, sequential_b, "{label}: thread B diverged");
    }
}
