//! Trait-conformance suite: every pipeline behind the [`Defense`] trait —
//! each `DefenseKind` baseline variant plus the full `EnsemblerPipeline` —
//! must satisfy the same contract:
//!
//! * prediction produces `[batch, num_classes]` finite logits;
//! * inference is deterministic and **immutable** (repeated calls agree);
//! * the split API (`client_features` → `server_outputs` → `classify`)
//!   composes to exactly `predict`;
//! * `evaluate` returns an accuracy in `[0, 1]` for any batch size;
//! * two threads calling `predict` on one shared pipeline concurrently get
//!   results bit-identical to sequential execution.

use ensembler::{
    Defense, DefenseKind, EnsemblerTrainer, EvalConfig, Precision, QuantizedDefense,
    SinglePipeline, TrainConfig,
};
use ensembler_data::{Dataset, SyntheticSpec};
use ensembler_metrics::accuracy;
use ensembler_nn::models::ResNetConfig;
use ensembler_tensor::Tensor;
use std::sync::Arc;

/// Every defence in the workspace, constructed untrained (conformance does
/// not depend on training) and boxed behind the trait.
fn all_defenses() -> Vec<Box<dyn Defense>> {
    let config = ResNetConfig::tiny_for_tests;
    let kinds = [
        DefenseKind::NoDefense,
        DefenseKind::AdditiveNoise { sigma: 0.1 },
        DefenseKind::Shredder {
            sigma: 0.1,
            expansion: 1.0,
        },
        DefenseKind::Dropout { probability: 0.3 },
    ];
    let mut defenses: Vec<Box<dyn Defense>> = kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            Box::new(SinglePipeline::new(config(), kind, 40 + i as u64).unwrap())
                as Box<dyn Defense>
        })
        .collect();

    let trainer = EnsemblerTrainer::new(config(), TrainConfig::fast_for_tests());
    let data = SyntheticSpec::tiny_for_tests().generate(8);
    defenses.push(Box::new(
        trainer.train(3, 2, &data.train).unwrap().into_pipeline(),
    ));

    // Int8 variants must satisfy every conformance clause too: the same
    // trait, the same determinism, the same split-composition contract.
    defenses.push(Box::new(QuantizedDefense::quantize(Arc::new(
        SinglePipeline::new(config(), DefenseKind::AdditiveNoise { sigma: 0.1 }, 61).unwrap(),
    ))));
    let trainer = EnsemblerTrainer::new(config(), TrainConfig::fast_for_tests());
    defenses.push(Box::new(QuantizedDefense::quantize(Arc::new(
        trainer.train(3, 2, &data.train).unwrap().into_pipeline(),
    ))));
    defenses
}

fn images(batch: usize) -> Tensor {
    Tensor::from_fn(&[batch, 3, 8, 8], |i| {
        ((i % 97) as f32 * 0.217).sin() * 0.5 + 0.5
    })
}

fn tiny_dataset() -> Dataset {
    let data = SyntheticSpec::tiny_for_tests().generate(12);
    data.test
}

#[test]
fn every_defense_predicts_the_documented_shape() {
    for defense in all_defenses() {
        let logits = defense.predict(&images(4)).unwrap();
        assert_eq!(
            logits.shape(),
            &[4, defense.config().num_classes],
            "{} logits shape",
            defense.label()
        );
        assert!(logits.is_finite(), "{} logits finite", defense.label());
    }
}

#[test]
fn every_defense_is_deterministic_across_calls() {
    for defense in all_defenses() {
        let batch = images(3);
        let first = defense.predict(&batch).unwrap();
        let second = defense.predict(&batch).unwrap();
        assert_eq!(
            first,
            second,
            "{}: inference must be immutable and repeatable",
            defense.label()
        );
    }
}

#[test]
fn the_split_api_composes_to_predict() {
    for defense in all_defenses() {
        let batch = images(2);
        let fused = defense.predict(&batch).unwrap();
        let transmitted = defense.client_features(&batch).unwrap();
        let maps = defense.server_outputs(&transmitted).unwrap();
        assert_eq!(maps.len(), defense.ensemble_size(), "{}", defense.label());
        let split = defense.classify(&maps).unwrap();
        assert_eq!(
            fused,
            split,
            "{}: client/server split must not change results",
            defense.label()
        );
    }
}

#[test]
fn every_defense_evaluates_to_a_probability_for_any_batch_size() {
    let data = tiny_dataset();
    for defense in all_defenses() {
        let default_acc = defense.evaluate(&data, &EvalConfig::default()).unwrap();
        assert!(
            (0.0..=1.0).contains(&default_acc),
            "{} accuracy {default_acc}",
            defense.label()
        );
        // The batch size is a sweep parameter, not a semantic one.
        for batch_size in [1usize, 3, 64] {
            let acc = defense
                .evaluate(&data, &EvalConfig::with_batch_size(batch_size))
                .unwrap();
            assert!(
                (acc - default_acc).abs() < 1e-6,
                "{}: accuracy must not depend on the evaluation batch size \
                 ({acc} at {batch_size} vs {default_acc} at default)",
                defense.label()
            );
        }
    }
}

#[test]
fn selected_count_never_exceeds_the_ensemble() {
    for defense in all_defenses() {
        assert!(defense.ensemble_size() >= 1, "{}", defense.label());
        assert!(
            (1..=defense.ensemble_size()).contains(&defense.selected_count()),
            "{}: P must be in 1..=N",
            defense.label()
        );
        assert_eq!(
            defense.server_bodies().len(),
            defense.ensemble_size(),
            "{}",
            defense.label()
        );
    }
}

/// Trains one Ensembler pipeline and returns it next to its int8 twin plus
/// an evaluation set large enough that one percentage point is two samples.
fn trained_pair() -> (Arc<dyn Defense>, QuantizedDefense, Dataset) {
    let data = SyntheticSpec::tiny_for_tests()
        .with_samples(48, 200)
        .generate(31);
    let trainer = EnsemblerTrainer::new(
        ResNetConfig::tiny_for_tests(),
        TrainConfig::fast_for_tests(),
    );
    let pipeline: Arc<dyn Defense> =
        Arc::new(trainer.train(3, 2, &data.train).unwrap().into_pipeline());
    let int8 = QuantizedDefense::quantize(Arc::clone(&pipeline));
    (pipeline, int8, data.test)
}

#[test]
fn int8_accuracy_stays_within_one_point_of_f32() {
    let (pipeline, int8, test) = trained_pair();
    let eval = EvalConfig::default();
    let f32_acc = pipeline.evaluate(&test, &eval).unwrap();
    let int8_acc = int8.evaluate(&test, &eval).unwrap();
    // Surfaced in the CI job log (run with --nocapture).
    println!(
        "accuracy-delta: f32 {:.4} int8 {:.4} delta {:+.4} ({} samples)",
        f32_acc,
        int8_acc,
        int8_acc - f32_acc,
        test.len()
    );
    assert!(
        (f32_acc - int8_acc).abs() <= 0.01 + 1e-6,
        "int8 accuracy {int8_acc} drifted more than 1 point from f32 {f32_acc}"
    );
}

#[test]
fn int8_predictions_are_deterministic_across_runs_and_batch_sizes() {
    let (_pipeline, int8, test) = trained_pair();
    let eval = EvalConfig::default();
    let first = int8.evaluate(&test, &eval).unwrap();
    let second = int8.evaluate(&test, &eval).unwrap();
    assert_eq!(first, second, "int8 evaluation must be repeatable");
    for batch_size in [1usize, 7, 64] {
        let acc = int8
            .evaluate(&test, &EvalConfig::with_batch_size(batch_size))
            .unwrap();
        assert!(
            (acc - first).abs() < 1e-6,
            "int8 accuracy must not depend on the evaluation batch size \
             ({acc} at {batch_size} vs {first} at default)"
        );
    }
    // Logit-level: a sample predicted alone equals the same sample inside a
    // batch, bit for bit — the coalescing guarantee in int8.
    let (images, _) = test.batch(0, 5);
    let together = int8.predict(&images).unwrap();
    let alone = int8.predict(&images.batch_item(3)).unwrap();
    let classes = together.shape()[1];
    assert_eq!(alone.data(), &together.data()[3 * classes..4 * classes]);
}

#[test]
fn evaluate_int8_precision_mode_matches_the_quantized_wrapper() {
    // EvalConfig::precision routes any defense through the quantized split
    // stage; on the wrapper itself both modes are the same arithmetic.
    let (pipeline, int8, test) = trained_pair();
    let int8_mode = EvalConfig::default().with_precision(Precision::Int8);
    assert_eq!(
        int8.evaluate(&test, &EvalConfig::default()).unwrap(),
        int8.evaluate(&test, &int8_mode).unwrap(),
    );
    // On the f32 pipeline, Int8 mode quantizes only the split tensors; it
    // must still stay within a point of the f32 sweep on this dataset.
    let f32_acc = pipeline.evaluate(&test, &EvalConfig::default()).unwrap();
    let wire_acc = pipeline.evaluate(&test, &int8_mode).unwrap();
    assert!(
        (f32_acc - wire_acc).abs() <= 0.01 + 1e-6,
        "wire-only quantization drifted: {wire_acc} vs {f32_acc}"
    );
}

#[test]
fn int8_and_f32_label_the_same_demo_images() {
    let (pipeline, int8, test) = trained_pair();
    let (images, labels) = test.batch(0, 32);
    let f32_logits = pipeline.predict(&images).unwrap();
    let int8_logits = int8.predict(&images).unwrap();
    // Accuracy against the true labels agrees exactly on this batch…
    assert_eq!(
        accuracy(&f32_logits, &labels),
        accuracy(&int8_logits, &labels)
    );
    // …because the argmax labels themselves agree.
    assert_eq!(
        f32_logits.argmax_rows(),
        int8_logits.argmax_rows(),
        "f32 and int8 must put the same labels on the batch"
    );
}

#[test]
fn concurrent_predict_from_two_threads_matches_sequential_execution() {
    for defense in all_defenses() {
        let label = defense.label().to_string();
        let shared: Arc<dyn Defense> = Arc::from(defense);
        let batch_a = images(2);
        let batch_b = images(5);
        let sequential_a = shared.predict(&batch_a).unwrap();
        let sequential_b = shared.predict(&batch_b).unwrap();

        let (concurrent_a, concurrent_b) = std::thread::scope(|scope| {
            let defense_a = Arc::clone(&shared);
            let defense_b = Arc::clone(&shared);
            let (ba, bb) = (&batch_a, &batch_b);
            let ha = scope.spawn(move || defense_a.predict(ba).unwrap());
            let hb = scope.spawn(move || defense_b.predict(bb).unwrap());
            (ha.join().unwrap(), hb.join().unwrap())
        });

        assert_eq!(concurrent_a, sequential_a, "{label}: thread A diverged");
        assert_eq!(concurrent_b, sequential_b, "{label}: thread B diverged");
    }
}
