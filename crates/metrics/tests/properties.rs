//! Property-based tests for the image-quality and classification metrics.

use ensembler_metrics::{accuracy, psnr, ssim, top_k_accuracy};
use ensembler_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn random_image(seed: u64, b: usize, hw: usize) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::from_fn(&[b, 3, hw, hw], |_| rng.next_f32())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ssim_is_symmetric_and_bounded(seed in any::<u64>(), hw in 8usize..17) {
        let a = random_image(seed, 1, hw);
        let b = random_image(seed.wrapping_add(1), 1, hw);
        let ab = ssim(&a, &b, 1.0);
        let ba = ssim(&b, &a, 1.0);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!(ssim(&a, &a, 1.0) > 0.999);
    }

    #[test]
    fn psnr_decreases_as_noise_grows(seed in any::<u64>(), hw in 8usize..17) {
        let a = random_image(seed, 1, hw);
        let small = a.add_scalar(0.02);
        let large = a.add_scalar(0.3);
        let p_small = psnr(&a, &small, 1.0);
        let p_large = psnr(&a, &large, 1.0);
        prop_assert!(p_small > p_large);
        prop_assert!(p_small <= 60.0);
        prop_assert_eq!(psnr(&a, &a, 1.0), 60.0);
    }

    #[test]
    fn accuracy_counts_exact_matches(seed in any::<u64>(), batch in 1usize..20, classes in 2usize..8) {
        let mut rng = Rng::seed_from(seed);
        let targets: Vec<usize> = (0..batch).map(|_| rng.below(classes)).collect();
        // Logits that exactly encode the targets.
        let mut logits = Tensor::zeros(&[batch, classes]);
        for (n, &t) in targets.iter().enumerate() {
            logits.data_mut()[n * classes + t] = 1.0;
        }
        prop_assert_eq!(accuracy(&logits, &targets), 1.0);
        prop_assert_eq!(top_k_accuracy(&logits, &targets, classes), 1.0);
        // Shifting every prediction by one class breaks all of them
        // (for classes >= 2 with one-hot logits).
        let shifted: Vec<usize> = targets.iter().map(|t| (t + 1) % classes).collect();
        prop_assert_eq!(accuracy(&logits, &shifted), 0.0);
    }

    #[test]
    fn top_k_accuracy_is_monotone_in_k(seed in any::<u64>(), batch in 1usize..10, classes in 2usize..6) {
        let mut rng = Rng::seed_from(seed);
        let logits = Tensor::from_fn(&[batch, classes], |_| rng.uniform(-1.0, 1.0));
        let targets: Vec<usize> = (0..batch).map(|_| rng.below(classes)).collect();
        let mut previous = 0.0f32;
        for k in 1..=classes {
            let acc = top_k_accuracy(&logits, &targets, k);
            prop_assert!(acc >= previous - 1e-6);
            previous = acc;
        }
        prop_assert_eq!(previous, 1.0);
    }
}
