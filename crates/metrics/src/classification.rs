//! Classification metrics: top-1 / top-k accuracy and confusion counts.

use ensembler_tensor::Tensor;

/// Top-1 accuracy of a `[batch, classes]` logit (or probability) matrix
/// against integer targets, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `targets.len()` differs from the batch
/// size.
///
/// # Examples
///
/// ```
/// use ensembler_metrics::accuracy;
/// use ensembler_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, -1.0, 0.0, 3.0], &[2, 2])?;
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "accuracy expects [batch, classes] logits");
    assert_eq!(
        logits.shape()[0],
        targets.len(),
        "one target per sample required"
    );
    if targets.is_empty() {
        return 0.0;
    }
    let predictions = logits.argmax_rows();
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / targets.len() as f32
}

/// Top-k accuracy: the fraction of samples whose true class is among the `k`
/// highest-scoring classes.
///
/// # Panics
///
/// Panics if `k` is zero, larger than the class count, or the shapes are
/// inconsistent.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    assert_eq!(logits.rank(), 2, "top_k_accuracy expects [batch, classes]");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(batch, targets.len(), "one target per sample required");
    assert!(k > 0 && k <= classes, "k must be in 1..=classes");
    if targets.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (n, &t) in targets.iter().enumerate() {
        let row = &logits.data()[n * classes..(n + 1) * classes];
        let target_score = row[t];
        // The target is in the top k iff fewer than k classes strictly beat it.
        let better = row.iter().filter(|&&v| v > target_score).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f32 / batch as f32
}

/// Per-class (correct, total) counts, useful for inspecting which synthetic
/// classes a defended model sacrifices.
///
/// # Panics
///
/// Panics if the shapes are inconsistent or a target index is out of range.
pub fn confusion_counts(
    logits: &Tensor,
    targets: &[usize],
    num_classes: usize,
) -> Vec<(usize, usize)> {
    assert_eq!(
        logits.rank(),
        2,
        "confusion_counts expects [batch, classes]"
    );
    assert_eq!(logits.shape()[0], targets.len(), "one target per sample");
    assert!(
        targets.iter().all(|&t| t < num_classes),
        "target class out of range"
    );
    let predictions = logits.argmax_rows();
    let mut counts = vec![(0usize, 0usize); num_classes];
    for (p, &t) in predictions.iter().zip(targets) {
        counts[t].1 += 1;
        if *p == t {
            counts[t].0 += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot_logits(labels: &[usize], classes: usize) -> Tensor {
        let mut t = Tensor::zeros(&[labels.len(), classes]);
        for (n, &l) in labels.iter().enumerate() {
            t.data_mut()[n * classes + l] = 5.0;
        }
        t
    }

    #[test]
    fn perfect_predictions_score_one() {
        let logits = one_hot_logits(&[0, 1, 2, 3], 4);
        assert_eq!(accuracy(&logits, &[0, 1, 2, 3]), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[0, 1, 2, 3], 1), 1.0);
    }

    #[test]
    fn chance_level_predictions() {
        let logits = one_hot_logits(&[0, 0, 0, 0], 4);
        assert_eq!(accuracy(&logits, &[0, 1, 2, 3]), 0.25);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.5, 0.4, //
                0.3, 0.4, 0.3, //
            ],
            &[2, 3],
        )
        .unwrap();
        let targets = [2usize, 0];
        let a1 = top_k_accuracy(&logits, &targets, 1);
        let a2 = top_k_accuracy(&logits, &targets, 2);
        let a3 = top_k_accuracy(&logits, &targets, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0);
    }

    #[test]
    fn empty_batch_has_zero_accuracy() {
        let logits = Tensor::zeros(&[0, 5]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn confusion_counts_track_per_class_totals() {
        let logits = one_hot_logits(&[0, 1, 1, 2], 3);
        let counts = confusion_counts(&logits, &[0, 1, 2, 2], 3);
        assert_eq!(counts[0], (1, 1));
        assert_eq!(counts[1], (1, 1));
        assert_eq!(counts[2], (1, 2));
    }

    #[test]
    #[should_panic(expected = "one target per sample")]
    fn mismatched_target_count_panics() {
        let logits = Tensor::zeros(&[2, 3]);
        let _ = accuracy(&logits, &[0]);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn invalid_k_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = top_k_accuracy(&logits, &[0], 4);
    }
}
