//! Image-quality and classification metrics used by the Ensembler evaluation.
//!
//! The paper reports three quantities for every defence: the change in
//! classification accuracy (ΔAcc), and the structural similarity (SSIM) and
//! peak signal-to-noise ratio (PSNR) between the client's private input and
//! the image the adversarial server reconstructs. Lower SSIM / PSNR means the
//! reconstruction is worse, i.e. the defence is better.
//!
//! # Examples
//!
//! ```
//! use ensembler_metrics::{psnr, ssim};
//! use ensembler_tensor::Tensor;
//!
//! let original = Tensor::ones(&[1, 3, 8, 8]);
//! let identical = original.clone();
//! assert!(ssim(&original, &identical, 1.0) > 0.99);
//! assert!(psnr(&original, &identical, 1.0) >= 60.0);
//! ```

mod classification;
mod image;

pub use classification::{accuracy, confusion_counts, top_k_accuracy};
pub use image::{psnr, psnr_batch, ssim, ssim_batch, SsimConfig};
