//! Peak signal-to-noise ratio and structural similarity for NCHW image batches.

use ensembler_tensor::Tensor;

/// Ceiling applied to PSNR when two images are numerically identical, so the
/// metric stays finite and comparable across runs.
const PSNR_CAP_DB: f32 = 60.0;

/// Configuration of the SSIM computation.
///
/// The defaults follow the common convention: an 8x8 uniform window moved
/// with stride 1 and the standard stabilising constants `C1 = (0.01 L)^2`,
/// `C2 = (0.03 L)^2` where `L` is the dynamic range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Square window extent in pixels.
    pub window: usize,
    /// Dynamic range `L` of the images (1.0 for `[0, 1]` images).
    pub dynamic_range: f32,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self {
            window: 8,
            dynamic_range: 1.0,
        }
    }
}

/// Peak signal-to-noise ratio (dB) between two single images or batches of
/// identical shape. Identical inputs are capped at 60 dB.
///
/// # Panics
///
/// Panics if the shapes differ or `max_value` is not positive.
///
/// # Examples
///
/// ```
/// use ensembler_metrics::psnr;
/// use ensembler_tensor::Tensor;
///
/// let a = Tensor::zeros(&[1, 1, 4, 4]);
/// let b = Tensor::full(&[1, 1, 4, 4], 0.5);
/// let value = psnr(&a, &b, 1.0);
/// assert!((value - 6.02).abs() < 0.1); // 10 log10(1 / 0.25)
/// ```
pub fn psnr(original: &Tensor, reconstruction: &Tensor, max_value: f32) -> f32 {
    assert_eq!(
        original.shape(),
        reconstruction.shape(),
        "psnr requires identical shapes"
    );
    assert!(max_value > 0.0, "dynamic range must be positive");
    let n = original.len().max(1) as f32;
    let mse: f32 = original
        .data()
        .iter()
        .zip(reconstruction.data())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / n;
    if mse <= f32::EPSILON {
        return PSNR_CAP_DB;
    }
    (10.0 * ((max_value * max_value) / mse).log10()).min(PSNR_CAP_DB)
}

/// Mean PSNR over the batch axis of two `[B, C, H, W]` tensors.
///
/// # Panics
///
/// Panics if the shapes differ, the tensors are not rank-4, or the batch is
/// empty.
pub fn psnr_batch(original: &Tensor, reconstruction: &Tensor, max_value: f32) -> f32 {
    assert_eq!(original.rank(), 4, "psnr_batch expects NCHW tensors");
    assert_eq!(
        original.shape(),
        reconstruction.shape(),
        "psnr_batch requires identical shapes"
    );
    let batch = original.shape()[0];
    assert!(batch > 0, "batch must be non-empty");
    (0..batch)
        .map(|n| {
            psnr(
                &original.batch_item(n),
                &reconstruction.batch_item(n),
                max_value,
            )
        })
        .sum::<f32>()
        / batch as f32
}

/// Structural similarity between two single NCHW images (batch size 1) or two
/// equal-size batches reduced to their mean.
///
/// The score is computed per channel with a sliding uniform window and then
/// averaged over windows, channels and batch entries. Values lie in
/// `[-1, 1]`, where 1 means structurally identical.
///
/// # Panics
///
/// Panics if the shapes differ or are not rank-4.
pub fn ssim(original: &Tensor, reconstruction: &Tensor, dynamic_range: f32) -> f32 {
    ssim_with_config(
        original,
        reconstruction,
        SsimConfig {
            dynamic_range,
            ..SsimConfig::default()
        },
    )
}

/// Mean SSIM over the batch axis, identical to [`ssim`] (which already
/// averages over the batch) but provided for symmetry with [`psnr_batch`].
pub fn ssim_batch(original: &Tensor, reconstruction: &Tensor, dynamic_range: f32) -> f32 {
    ssim(original, reconstruction, dynamic_range)
}

/// SSIM with an explicit [`SsimConfig`].
///
/// # Panics
///
/// Panics if the shapes differ, are not rank-4, or the window is larger than
/// the image.
pub fn ssim_with_config(original: &Tensor, reconstruction: &Tensor, config: SsimConfig) -> f32 {
    assert_eq!(original.rank(), 4, "ssim expects NCHW tensors");
    assert_eq!(
        original.shape(),
        reconstruction.shape(),
        "ssim requires identical shapes"
    );
    let [b, c, h, w] = [
        original.shape()[0],
        original.shape()[1],
        original.shape()[2],
        original.shape()[3],
    ];
    let win = config.window.min(h).min(w);
    assert!(win > 0, "ssim window must be positive");
    let c1 = (0.01 * config.dynamic_range).powi(2);
    let c2 = (0.03 * config.dynamic_range).powi(2);

    let plane = h * w;
    let mut total = 0.0f64;
    let mut count = 0usize;

    for n in 0..b {
        for ch in 0..c {
            let base = n * c * plane + ch * plane;
            let x = &original.data()[base..base + plane];
            let y = &reconstruction.data()[base..base + plane];
            for wy in 0..=(h - win) {
                for wx in 0..=(w - win) {
                    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
                    let cnt = (win * win) as f64;
                    for dy in 0..win {
                        for dx in 0..win {
                            let xi = f64::from(x[(wy + dy) * w + wx + dx]);
                            let yi = f64::from(y[(wy + dy) * w + wx + dx]);
                            sx += xi;
                            sy += yi;
                            sxx += xi * xi;
                            syy += yi * yi;
                            sxy += xi * yi;
                        }
                    }
                    let mx = sx / cnt;
                    let my = sy / cnt;
                    let vx = (sxx / cnt - mx * mx).max(0.0);
                    let vy = (syy / cnt - my * my).max(0.0);
                    let cov = sxy / cnt - mx * my;
                    let c1 = f64::from(c1);
                    let c2 = f64::from(c2);
                    let score = ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                        / ((mx * mx + my * my + c1) * (vx + vy + c2));
                    total += score;
                    count += 1;
                }
            }
        }
    }
    (total / count.max(1) as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_tensor::Rng;

    fn random_image(seed: u64, shape: &[usize]) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(shape, |_| rng.next_f32())
    }

    #[test]
    fn psnr_of_identical_images_is_capped() {
        let img = random_image(0, &[1, 3, 8, 8]);
        assert_eq!(psnr(&img, &img, 1.0), 60.0);
    }

    #[test]
    fn psnr_decreases_with_noise_level() {
        let img = random_image(1, &[1, 3, 8, 8]);
        let slightly = img.add_scalar(0.05);
        let heavily = img.add_scalar(0.5);
        let p_slight = psnr(&img, &slightly, 1.0);
        let p_heavy = psnr(&img, &heavily, 1.0);
        assert!(p_slight > p_heavy);
        assert!((p_slight - 26.02).abs() < 0.2); // 10 log10(1/0.0025)
    }

    #[test]
    fn psnr_batch_averages_per_sample_values() {
        let a = random_image(2, &[2, 1, 4, 4]);
        let mut b = a.clone();
        // Corrupt only the second sample.
        for v in &mut b.data_mut()[16..] {
            *v += 0.25;
        }
        let per_batch = psnr_batch(&a, &b, 1.0);
        let first = psnr(&a.batch_item(0), &b.batch_item(0), 1.0);
        let second = psnr(&a.batch_item(1), &b.batch_item(1), 1.0);
        assert!((per_batch - (first + second) / 2.0).abs() < 1e-4);
        assert_eq!(first, 60.0);
        assert!(second < 14.0);
    }

    #[test]
    fn ssim_is_one_for_identical_images() {
        let img = random_image(3, &[2, 3, 12, 12]);
        assert!(ssim(&img, &img, 1.0) > 0.999);
    }

    #[test]
    fn ssim_is_low_for_unrelated_images() {
        let a = random_image(4, &[1, 1, 16, 16]);
        let b = random_image(5, &[1, 1, 16, 16]);
        assert!(ssim(&a, &b, 1.0) < 0.3);
    }

    #[test]
    fn ssim_is_bounded() {
        let a = random_image(6, &[1, 2, 10, 10]);
        let b = a.map(|x| 1.0 - x);
        let s = ssim(&a, &b, 1.0);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn ssim_penalizes_structure_loss_more_than_brightness_shift() {
        let a = random_image(7, &[1, 1, 16, 16]);
        let shifted = a.add_scalar(0.1).clamp(0.0, 1.0);
        let shuffled = {
            let mut v = a.data().to_vec();
            v.reverse();
            Tensor::from_vec(v, a.shape()).unwrap()
        };
        assert!(ssim(&a, &shifted, 1.0) > ssim(&a, &shuffled, 1.0));
    }

    #[test]
    fn small_images_use_a_clamped_window() {
        let a = random_image(8, &[1, 1, 4, 4]);
        let s = ssim(&a, &a, 1.0);
        assert!(s > 0.999, "window larger than image must be clamped");
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn mismatched_shapes_panic() {
        let a = Tensor::zeros(&[1, 1, 4, 4]);
        let b = Tensor::zeros(&[1, 1, 5, 5]);
        let _ = psnr(&a, &b, 1.0);
    }

    #[test]
    fn ssim_config_default_values() {
        let cfg = SsimConfig::default();
        assert_eq!(cfg.window, 8);
        assert!((cfg.dynamic_range - 1.0).abs() < f32::EPSILON);
    }
}
