//! Property-based tests for the tensor kernel.

use ensembler_tensor::gemm::{
    gemm_nn_with, gemm_nt_with, gemm_tn_with, Parallelism, MR, NR, SMALL_THRESHOLD,
};
use ensembler_tensor::quant::{qgemm_nn_with, QKC, QSMALL_THRESHOLD};
use ensembler_tensor::{
    col2im, im2col, im2col_i8, Conv2dGeometry, QTensor, QTensorBatch, Rng, Tensor,
};
use proptest::prelude::*;

/// Textbook O(m·k·n) integer product used as the oracle for the packed int8
/// kernel.
fn naive_qgemm(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += a[i * k + p] as i32 * b[p * n + j] as i32;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn fill_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
    (0..len).map(|_| rng.below(255) as i8).collect()
}

/// Textbook O(m·k·n) product used as the oracle for the blocked kernels.
fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = x[r * cols + c];
        }
    }
    out
}

fn fill(len: usize, rng: &mut Rng) -> Vec<f32> {
    (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

fn assert_all_close(got: &[f32], want: &[f32], tol: f32) {
    assert_eq!(got.len(), want.len());
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "gemm mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Shapes that straddle the interesting boundaries: unit dimensions,
/// non-multiples of the MR/NR register tile, and sizes on both sides of the
/// packing threshold.
fn gemm_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..8, any::<u64>()).prop_map(|(pick, seed)| {
        let mut rng = Rng::seed_from(seed);
        let odd = |lo: usize, hi: usize, rng: &mut Rng| lo + rng.below(hi - lo);
        match pick {
            0 => (1, odd(1, 40, &mut rng), odd(1, 40, &mut rng)), // m = 1
            1 => (odd(1, 40, &mut rng), 1, odd(1, 40, &mut rng)), // k = 1
            2 => (odd(1, 40, &mut rng), odd(1, 40, &mut rng), 1), // n = 1
            // Ragged tile edges with k*n past SMALL_THRESHOLD so the packed
            // kernel (not the small-product loop) handles them.
            3 => (MR + 1, odd(94, 128, &mut rng), NR + 3),
            // Past SMALL_THRESHOLD with non-multiple-of-block extents.
            4 => (37, 41, 43),
            5 => (MR * 9 + 2, 65, NR * 5 + 5),
            _ => (
                odd(1, 48, &mut rng),
                odd(1, 48, &mut rng),
                odd(1, 48, &mut rng),
            ),
        }
    })
}

/// Strategy producing a small random tensor with a random 2-D shape.
fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(&[r, c], |_| rng.uniform(-2.0, 2.0))
    })
}

/// Strategy producing a small random NCHW tensor.
fn small_nchw() -> impl Strategy<Value = Tensor> {
    (1usize..3, 1usize..4, 3usize..7, 3usize..7, any::<u64>()).prop_map(|(b, c, h, w, seed)| {
        let mut rng = Rng::seed_from(seed);
        Tensor::from_fn(&[b, c, h, w], |_| rng.uniform(-1.0, 1.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_commutes(a in small_matrix()) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn subtraction_is_inverse_of_addition(a in small_matrix()) {
        let b = a.map(|x| (x * 3.0).sin());
        let back = a.add(&b).sub(&b);
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn scaling_distributes_over_addition(a in small_matrix(), k in -3.0f32..3.0) {
        let b = a.map(|x| x + 1.0);
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive(a in small_matrix()) {
        prop_assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn matmul_agrees_with_naive_definition(a in small_matrix(), seed in any::<u64>()) {
        let k = a.shape()[1];
        let n = 1 + (seed % 4) as usize;
        let mut rng = Rng::seed_from(seed);
        let b = Tensor::from_fn(&[k, n], |_| rng.uniform(-1.0, 1.0));
        let c = a.matmul(&b);
        for i in 0..a.shape()[0] {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                prop_assert!((c.at2(i, j) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn reshape_preserves_sum(a in small_matrix()) {
        let flat = a.reshape(&[a.len()]).unwrap();
        prop_assert!((flat.sum() - a.sum()).abs() < 1e-4);
    }

    #[test]
    fn sum_axis_decompositions_agree(a in small_matrix()) {
        let total = a.sum();
        prop_assert!((a.sum_axis0().sum() - total).abs() < 1e-4);
        prop_assert!((a.sum_axis1().sum() - total).abs() < 1e-4);
    }

    #[test]
    fn cosine_similarity_is_bounded(a in small_matrix()) {
        let b = a.map(|x| x.cos());
        let cs = a.cosine_similarity_per_sample(&b);
        for v in cs.data() {
            prop_assert!(*v >= -1.0 - 1e-5 && *v <= 1.0 + 1e-5);
        }
        let self_cs = a.cosine_similarity_per_sample(&a);
        for (row, v) in self_cs.data().iter().enumerate() {
            // Rows that are exactly zero report similarity 0 by convention.
            let row_norm: f32 = (0..a.shape()[1]).map(|c| a.at2(row, c).powi(2)).sum();
            if row_norm > 1e-10 {
                prop_assert!((v - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn concat_then_split_round_trips(x in small_nchw()) {
        let y = x.map(|v| v + 10.0);
        let cat = Tensor::concat_channels(&[&x, &y]);
        let parts = cat.split_channels(2);
        prop_assert_eq!(&parts[0], &x);
        prop_assert_eq!(&parts[1], &y);
    }

    #[test]
    fn batch_stack_round_trips(x in small_nchw()) {
        let items: Vec<Tensor> = (0..x.shape()[0]).map(|n| x.batch_item(n)).collect();
        prop_assert_eq!(Tensor::stack_batch(&items), x);
    }

    #[test]
    fn im2col_col2im_adjointness(x in small_nchw(), seed in any::<u64>()) {
        let geom = Conv2dGeometry::new(3, 1, 1);
        let cols = im2col(&x, geom);
        let mut rng = Rng::seed_from(seed);
        let y = Tensor::from_fn(cols.shape(), |_| rng.uniform(-1.0, 1.0));
        let lhs = cols.dot(&y);
        let rhs = x.dot(&col2im(
            &y,
            x.shape()[0],
            x.shape()[1],
            x.shape()[2],
            x.shape()[3],
            geom,
        ));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn blocked_gemm_matches_naive_on_random_shapes((m, k, n) in gemm_shape(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let want = naive_gemm(&a, &b, m, k, n);
        // Serial and parallel paths must both match the oracle, whatever side
        // of the size thresholds the shape falls on.
        assert_all_close(&gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial), &want, 1e-4);
        assert_all_close(&gemm_nn_with(&a, &b, m, k, n, Parallelism::Parallel), &want, 1e-4);
    }

    #[test]
    fn transposed_gemm_variants_match_naive((m, k, n) in gemm_shape(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let want = naive_gemm(&a, &b, m, k, n);
        // Aᵀ stored as [k,m] and Bᵀ stored as [n,k] must hit the same result
        // through the transpose-aware packing, on both execution paths.
        let a_t = transpose(&a, m, k);
        let b_t = transpose(&b, k, n);
        for par in [Parallelism::Serial, Parallelism::Parallel] {
            assert_all_close(&gemm_tn_with(&a_t, &b, k, m, n, par), &want, 1e-4);
            assert_all_close(&gemm_nt_with(&a, &b_t, m, k, n, par), &want, 1e-4);
        }
    }

    #[test]
    fn gemm_threshold_boundary_is_seamless(seed in any::<u64>()) {
        // Shape pairs bracketing SMALL_THRESHOLD (which is on k*n only): the
        // packed kernel and the small-path loop must both agree with the
        // naive oracle on either side of the switch.
        let mut rng = Rng::seed_from(seed);
        for n in [31usize, 33] {
            let (m, k) = (32usize, 32usize);
            assert!((k * n < SMALL_THRESHOLD) == (n == 31));
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let want = naive_gemm(&a, &b, m, k, n);
            assert_all_close(&gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial), &want, 1e-4);
        }
    }

    #[test]
    fn gemm_rows_are_batch_invariant((m, k, n) in gemm_shape(), seed in any::<u64>()) {
        // The engine coalesces single-row requests into mini-batches, so row
        // i of a product must be bit-exact whether computed alone or inside a
        // larger batch (kernel path choice must not depend on m).
        let mut rng = Rng::seed_from(seed);
        let a = fill(m * k, &mut rng);
        let b = fill(k * n, &mut rng);
        let whole = gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial);
        let row0 = gemm_nn_with(&a[..k], &b, 1, k, n, Parallelism::Serial);
        prop_assert_eq!(&whole[..n], &row0[..]);
    }

    #[test]
    fn parallel_im2col_matches_row_extraction(x in small_nchw(), seed in any::<u64>()) {
        // im2col over the whole batch must equal stitching per-item lowerings,
        // which is exactly the invariant the batch-parallel split relies on.
        let _ = seed;
        let geom = Conv2dGeometry::new(3, 1, 1);
        let whole = im2col(&x, geom);
        let mut stitched = Vec::new();
        for n in 0..x.shape()[0] {
            stitched.extend_from_slice(im2col(&x.batch_item(n), geom).data());
        }
        prop_assert_eq!(whole.data(), &stitched[..]);
    }

    #[test]
    fn conv_geometry_round_trip(h in 4usize..16, k in 1usize..4, p in 0usize..2) {
        // For stride 1 the transposed geometry exactly inverts the forward one.
        let geom = Conv2dGeometry::new(k, 1, p);
        if h + 2 * p >= k {
            let out = geom.output_extent(h);
            prop_assert_eq!(geom.transposed_output_extent(out), h);
        }
    }

    #[test]
    fn quantize_dequantize_error_is_at_most_half_a_step(
        len in 1usize..200,
        magnitude in 0.001f32..1000.0,
        seed in any::<u64>()
    ) {
        // The defining bound of symmetric int8 quantization: every element
        // reconstructs to within scale/2 (up to f32 rounding slack).
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::from_fn(&[len], |_| rng.uniform(-magnitude, magnitude));
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        for (x, y) in t.data().iter().zip(back.data()) {
            prop_assert!(
                (x - y).abs() <= q.scale() * 0.500001,
                "roundtrip error {} exceeds scale/2 = {}",
                (x - y).abs(),
                q.scale() / 2.0
            );
        }
        // Per-sample batch quantization obeys the same bound per row.
        let rows = Tensor::from_fn(&[4, 16], |_| rng.uniform(-magnitude, magnitude));
        let qb = QTensorBatch::quantize_batch(&rows);
        let back = qb.dequantize();
        for (i, (x, y)) in rows.data().iter().zip(back.data()).enumerate() {
            prop_assert!((x - y).abs() <= qb.scales()[i / 16] * 0.500001);
        }
    }

    #[test]
    fn qgemm_matches_the_naive_i32_oracle((m, k, n) in gemm_shape(), seed in any::<u64>()) {
        // Same shape strategy as the f32 oracle suite: unit dims, ragged
        // register-tile edges, both sides of the packing threshold. Integer
        // accumulation is exact, so equality is bitwise on every path.
        let mut rng = Rng::seed_from(seed);
        let a = fill_i8(m * k, &mut rng);
        let b = fill_i8(k * n, &mut rng);
        let want = naive_qgemm(&a, &b, m, k, n);
        prop_assert_eq!(qgemm_nn_with(&a, &b, m, k, n, Parallelism::Serial), want.clone());
        prop_assert_eq!(qgemm_nn_with(&a, &b, m, k, n, Parallelism::Parallel), want);
    }

    #[test]
    fn qgemm_edge_shapes_match_the_oracle(seed in any::<u64>()) {
        // Explicit degenerate and boundary shapes: empty dims, 1x1, odd k
        // (the kernel walks k in pairs), k spanning multiple KC blocks, and
        // k*n straddling the small-product threshold.
        let mut rng = Rng::seed_from(seed);
        for (m, k, n) in [
            (0usize, 3usize, 4usize),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (2, 7, 3),
            (5, QKC + 3, 2),
            (4, 33, 31), // k*n just below QSMALL_THRESHOLD: small-product loop
            (4, 32, 32), // k*n exactly at the threshold: packed kernel
        ] {
            assert!((k * n < QSMALL_THRESHOLD) == (k * n < 32 * 32));
            let a = fill_i8(m * k, &mut rng);
            let b = fill_i8(k * n, &mut rng);
            let want = naive_qgemm(&a, &b, m, k, n);
            prop_assert_eq!(qgemm_nn_with(&a, &b, m, k, n, Parallelism::Serial), want);
        }
    }

    #[test]
    fn qgemm_rows_are_batch_invariant((m, k, n) in gemm_shape(), seed in any::<u64>()) {
        // Same invariant the engine's coalescer relies on for f32, in int8.
        let mut rng = Rng::seed_from(seed);
        if m == 0 {
            continue;
        }
        let a = fill_i8(m * k, &mut rng);
        let b = fill_i8(k * n, &mut rng);
        let whole = qgemm_nn_with(&a, &b, m, k, n, Parallelism::Serial);
        let row0 = qgemm_nn_with(&a[..k], &b, 1, k, n, Parallelism::Serial);
        prop_assert_eq!(&whole[..n], &row0[..]);
    }

    #[test]
    fn i8_lowering_commutes_with_quantization(x in small_nchw(), seed in any::<u64>()) {
        // im2col_i8(quantize(x)) must equal elementwise-quantizing im2col(x)
        // with the same per-sample scales: zero padding maps to quantized
        // zero, which is what the int8 convolution path relies on.
        let _ = seed;
        let geom = Conv2dGeometry::new(3, 1, 1);
        let [b, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let q = QTensorBatch::quantize_batch(&x);
        let got = im2col_i8(q.data(), b, c, h, w, geom);

        let cols = im2col(&x, geom);
        let rows_per_item = cols.shape()[0] / b;
        let row_len = cols.shape()[1];
        let expect: Vec<i8> = cols
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let sample = (i / row_len) / rows_per_item;
                let inv = 1.0 / q.scales()[sample];
                (v * inv).round().clamp(-127.0, 127.0) as i8
            })
            .collect();
        prop_assert_eq!(got, expect);
    }
}
