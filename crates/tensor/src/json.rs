//! A small dependency-free JSON value type with a parser and writers.
//!
//! The workspace serialises a handful of artefacts — tensors, checkpoints,
//! selector secrets and benchmark result tables — to JSON. The build
//! environment has no network access, so instead of `serde`/`serde_json`
//! those types implement explicit `to_json` / `from_json` conversions on top
//! of this module. Keeping serialisation explicit also documents exactly what
//! leaves the process, which matters for a privacy-focused codebase.
//!
//! # Examples
//!
//! ```
//! use ensembler_tensor::json::JsonValue;
//!
//! let value = JsonValue::parse(r#"{"shape": [2, 2], "data": [1, 2, 3, 4]}"#)?;
//! let shape = value.get("shape").unwrap().as_usize_vec()?;
//! assert_eq!(shape, vec![2, 2]);
//! # Ok::<(), ensembler_tensor::json::JsonError>(())
//! ```

use std::fmt;

/// Error produced when parsing or interpreting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_sep, item_sep, close_sep) = match indent {
            Some(width) => {
                let pad = " ".repeat(width * (depth + 1));
                let close = " ".repeat(width * depth);
                (
                    format!("\n{pad}"),
                    format!(",\n{pad}"),
                    format!("\n{close}"),
                )
            }
            None => (String::new(), ",".to_string(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literals; follow
                    // JavaScript's JSON.stringify and write null so the
                    // document stays parseable (readers then fail loudly
                    // with "expected number, found Null").
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                out.push_str(&open_sep);
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_sep);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                out.push_str(&open_sep);
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(&close_sep);
                out.push('}');
            }
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks a key up in an object, erroring when absent.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the missing key.
    pub fn require(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing object key {key:?}")))
    }

    /// Interprets the value as a number.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value is not a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(JsonError::new(format!("expected number, found {other:?}"))),
        }
    }

    /// Interprets the value as a non-negative integer.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value is not a non-negative whole number.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(JsonError::new(format!(
                "expected unsigned integer, found {n}"
            )));
        }
        Ok(n as usize)
    }

    /// Interprets the value as an array.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, found {other:?}"))),
        }
    }

    /// Interprets the value as an array of `f32`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value is not a numeric array.
    pub fn as_f32_vec(&self) -> Result<Vec<f32>, JsonError> {
        self.as_array()?
            .iter()
            .map(|v| v.as_f64().map(|n| n as f32))
            .collect()
    }

    /// Interprets the value as an array of `usize`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value is not an array of non-negative
    /// whole numbers.
    pub fn as_usize_vec(&self) -> Result<Vec<usize>, JsonError> {
        self.as_array()?.iter().map(|v| v.as_usize()).collect()
    }

    /// Builds a numeric array from `f32` values.
    pub fn from_f32_slice(values: &[f32]) -> JsonValue {
        JsonValue::Array(
            values
                .iter()
                .map(|&v| JsonValue::Number(v as f64))
                .collect(),
        )
    }

    /// Builds a numeric array from `usize` values.
    pub fn from_usize_slice(values: &[usize]) -> JsonValue {
        JsonValue::Array(
            values
                .iter()
                .map(|&v| JsonValue::Number(v as f64))
                .collect(),
        )
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(JsonError::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "unterminated array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "unterminated object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(JsonError::new(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-2.5").unwrap(), JsonValue::Number(-2.5));
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".to_string())
        );
        let parsed = JsonValue::parse(r#"{"xs": [1, 2, 3], "ok": false}"#).unwrap();
        assert_eq!(
            parsed.get("xs").unwrap().as_usize_vec().unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(false)));
        assert!(parsed.get("missing").is_none());
        assert!(parsed.require("missing").is_err());
    }

    #[test]
    fn render_round_trips() {
        let value = JsonValue::Object(vec![
            ("name".to_string(), JsonValue::String("x\"y".to_string())),
            ("data".to_string(), JsonValue::from_f32_slice(&[1.0, -0.5])),
            ("empty".to_string(), JsonValue::Array(vec![])),
            ("flag".to_string(), JsonValue::Null),
        ]);
        for text in [value.render(), value.render_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(JsonValue::Number(4.0).render(), "4");
        assert_eq!(JsonValue::Number(0.25).render(), "0.25");
    }

    #[test]
    fn non_finite_numbers_stay_parseable() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = JsonValue::Array(vec![JsonValue::Number(bad)]).render();
            let parsed = JsonValue::parse(&doc).expect("document must stay valid JSON");
            // The value degrades to null, which typed readers reject loudly.
            assert_eq!(parsed, JsonValue::Array(vec![JsonValue::Null]));
            assert!(parsed.as_f32_vec().is_err());
        }
    }

    #[test]
    fn typed_accessors_validate() {
        let v = JsonValue::parse("[1, 2.5]").unwrap();
        assert!(v.as_usize_vec().is_err());
        assert_eq!(v.as_f32_vec().unwrap(), vec![1.0, 2.5]);
        assert!(JsonValue::Bool(true).as_f64().is_err());
        assert!(JsonValue::Null.as_array().is_err());
    }
}
