//! Scoped-thread data parallelism used by the inference engine and the
//! ensemble fan-out.
//!
//! The workspace cannot depend on `rayon` (the build environment has no
//! network access), so this module provides the one primitive the stack
//! needs: [`par_map`], an order-preserving parallel map over a slice built on
//! `std::thread::scope`. Work items are claimed from an atomic counter, so
//! uneven item costs balance across however many cores the host offers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` in parallel, preserving input order in the output.
///
/// Threads are only spawned when there is more than one item and the host
/// reports more than one core; otherwise the map runs inline. Panics raised
/// by `f` are propagated to the caller.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::parallel::par_map;
///
/// let squares = par_map(&[1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if n <= 1 || workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (index, value) in results {
                        slots[index] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = par_map(&items, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[usize], |x| *x), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |x| x + 1), vec![8]);
    }

    #[test]
    fn runs_on_all_items_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = par_map(&[1, 2, 3, 4, 5, 6, 7, 8], |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 8);
        assert_eq!(calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let _ = par_map(&[1, 2, 3, 4], |x| {
            if *x == 3 {
                panic!("boom");
            }
            *x
        });
    }
}
