//! Deterministic random number generation and weight-initialization schemes.

/// Deterministic random number generator used across the whole workspace.
///
/// All experiments in the reproduction are seeded so that training runs,
/// synthetic datasets and attacks are exactly repeatable. `Rng` is a small
/// self-contained SplitMix64 generator (no external dependency) exposing just
/// the sampling primitives the stack needs. Its state is a single `u64`, so
/// cloning and forking are cheap and the type is trivially `Send + Sync`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_f32(), b.next_f32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut rng = Self {
            state: seed ^ GOLDEN_GAMMA,
        };
        // Discard one output so trivially related seeds (0, 1, 2, ...) do not
        // produce trivially related first samples.
        let _ = rng.next_u64();
        rng
    }

    /// Returns the next raw 64-bit output of the SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality bits -> the full f32 mantissa range in [0, 1).
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Returns a uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        assert!(low < high, "uniform range must satisfy low < high");
        low + (high - low) * self.next_f32()
    }

    /// Returns a standard-normal sample using the Box-Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Box-Muller: avoid log(0) by clamping the first uniform away from zero.
        let u1 = self.next_f32().max(1e-7);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Lemire's widening-multiply reduction: unbiased enough for every use
        // in this workspace and branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `0..n` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} indices out of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }

    /// Forks a child generator whose stream is independent of the parent's
    /// subsequent output.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }
}

/// Weight initialization schemes used by the NN layers.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::{Init, Rng, Tensor};
///
/// let mut rng = Rng::seed_from(7);
/// let w = Init::KaimingNormal { fan_in: 27 }.tensor(&[8, 3, 3, 3], &mut rng);
/// assert_eq!(w.shape(), &[8, 3, 3, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros.
    Zeros,
    /// All ones.
    Ones,
    /// Constant value.
    Constant(f32),
    /// Uniform in `[-bound, bound]`.
    Uniform {
        /// Half-width of the sampling interval.
        bound: f32,
    },
    /// Gaussian with the given standard deviation.
    Normal {
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// He/Kaiming normal initialization: `std = sqrt(2 / fan_in)`.
    KaimingNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Glorot/Xavier uniform initialization: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections.
        fan_in: usize,
        /// Number of output connections.
        fan_out: usize,
    },
}

impl Init {
    /// Samples a single value according to the scheme.
    pub fn sample(&self, rng: &mut Rng) -> f32 {
        match *self {
            Init::Zeros => 0.0,
            Init::Ones => 1.0,
            Init::Constant(c) => c,
            Init::Uniform { bound } => rng.uniform(-bound, bound.max(f32::MIN_POSITIVE)),
            Init::Normal { std } => rng.normal_with(0.0, std),
            Init::KaimingNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                rng.normal_with(0.0, std)
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                rng.uniform(-bound, bound)
            }
        }
    }

    /// Creates a tensor of the given shape filled with samples from the scheme.
    pub fn tensor(&self, shape: &[usize], rng: &mut Rng) -> crate::Tensor {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| self.sample(rng)).collect();
        crate::Tensor::from_vec(data, shape).expect("length matches shape by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_clones() {
        let mut a = Rng::seed_from(123);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_f32(), b.next_f32());
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let x = rng.uniform(-0.5, 2.0);
            assert!((-0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = Rng::seed_from(2);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn choose_indices_are_distinct_and_sorted() {
        let mut rng = Rng::seed_from(3);
        let idx = rng.choose_indices(10, 4);
        assert_eq!(idx.len(), 4);
        let mut sorted = idx.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "cannot choose")]
    fn choose_more_than_available_panics() {
        let mut rng = Rng::seed_from(4);
        let _ = rng.choose_indices(3, 5);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = Rng::seed_from(5);
        let narrow = Init::KaimingNormal { fan_in: 4 }.tensor(&[1000], &mut rng);
        let wide = Init::KaimingNormal { fan_in: 400 }.tensor(&[1000], &mut rng);
        let var = |t: &crate::Tensor| {
            let m = t.data().iter().sum::<f32>() / t.len() as f32;
            t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.len() as f32
        };
        assert!(var(&narrow) > var(&wide) * 10.0);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from(6);
        let mut child = parent.fork();
        // Child and parent should not produce identical streams.
        let p: Vec<f32> = (0..8).map(|_| parent.next_f32()).collect();
        let c: Vec<f32> = (0..8).map(|_| child.next_f32()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(7);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
