//! Shape bookkeeping helpers shared by the tensor operations.

/// A tensor shape: the extent of every axis in row-major order.
///
/// The Ensembler stack uses at most four axes (`[batch, channels, height,
/// width]`), but [`Shape`] itself is rank-agnostic so fully-connected layers
/// can use two-axis shapes without special cases.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4, 4]);
/// assert_eq!(s.len(), 96);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dims(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from the given dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements described by this shape.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the row-major strides for this shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use ensembler_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        stride_for(&self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

/// Computes row-major strides for a dimension list.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::stride_for;
/// assert_eq!(stride_for(&[4, 2, 3]), vec![6, 3, 1]);
/// assert_eq!(stride_for(&[]), Vec::<usize>::new());
/// ```
pub fn stride_for(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Returns `true` if two shapes are element-wise compatible (identical dims).
///
/// The tensor kernel intentionally does not implement NumPy-style implicit
/// broadcasting; the only "broadcast" the NN layers need (per-channel bias) is
/// provided as an explicit operation on [`crate::Tensor`].
///
/// # Examples
///
/// ```
/// use ensembler_tensor::broadcast_compatible;
/// assert!(broadcast_compatible(&[2, 3], &[2, 3]));
/// assert!(!broadcast_compatible(&[2, 3], &[3, 2]));
/// ```
pub fn broadcast_compatible(a: &[usize], b: &[usize]) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.len(), 120);
        assert!(!s.is_empty());
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn zero_sized_shape_is_empty() {
        let s = Shape::new(&[2, 0, 4]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }

    #[test]
    fn strides_for_single_axis() {
        assert_eq!(stride_for(&[7]), vec![1]);
    }

    #[test]
    fn compatibility_requires_equality() {
        assert!(broadcast_compatible(&[4], &[4]));
        assert!(!broadcast_compatible(&[4], &[4, 1]));
    }
}
