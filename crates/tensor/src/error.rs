//! Error type for fallible tensor constructors and reshapes.

use std::error::Error;
use std::fmt;

/// Error returned when a tensor operation is requested with incompatible
/// shapes or element counts.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::Tensor;
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(err.to_string().contains("expected 4 elements"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a new shape error carrying a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Returns the human-readable description of the mismatch.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let e = ShapeError::new("expected 4 elements, got 3");
        assert_eq!(e.to_string(), "expected 4 elements, got 3");
        assert_eq!(e.message(), "expected 4 elements, got 3");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
