//! Linear-algebra, axis-reduction and NCHW-structure operations on [`Tensor`].

use crate::gemm;
use crate::Tensor;

impl Tensor {
    // ------------------------------------------------------------------
    // Matrix operations (rank-2)
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Backed by the blocked, parallel kernel in [`crate::gemm`]: large
    /// products are cache-tiled and split across cores, small ones run a
    /// plain serial loop.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let out = gemm::gemm_nn(self.data(), other.data(), m, k, n);
        Tensor::from_vec(out, &[m, n]).expect("matmul output length is m*n")
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m]).expect("transpose preserves length")
    }

    /// Computes `self^T * other` without materialising the transpose:
    /// `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Backed by the blocked, parallel kernel in [`crate::gemm`]; the
    /// transpose is folded into the kernel's packing step, so no extra copy
    /// of the operand is made.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the leading dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank-2");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_tn leading dimensions differ: {k} vs {k2}");
        let out = gemm::gemm_tn(self.data(), other.data(), k, m, n);
        Tensor::from_vec(out, &[m, n]).expect("matmul_tn output length is m*n")
    }

    /// Computes `self * other^T`: `[m, k] x [n, k]^T -> [m, n]`.
    ///
    /// Backed by the blocked, parallel kernel in [`crate::gemm`]; the
    /// transpose is folded into the kernel's packing step, so no extra copy
    /// of the operand is made.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the trailing dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank-2");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul_nt trailing dimensions differ: {k} vs {k2}");
        let out = gemm::gemm_nt(self.data(), other.data(), m, k, n);
        Tensor::from_vec(out, &[m, n]).expect("matmul_nt output length is m*n")
    }

    // ------------------------------------------------------------------
    // Axis reductions (rank-2)
    // ------------------------------------------------------------------

    /// Sums a rank-2 tensor over axis 0, producing a `[cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis0 requires a rank-2 tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            for (acc, v) in out.iter_mut().zip(row) {
                *acc += v;
            }
        }
        Tensor::from_vec(out, &[cols]).expect("length equals cols")
    }

    /// Sums a rank-2 tensor over axis 1, producing a `[rows]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_axis1(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis1 requires a rank-2 tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; rows];
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.data()[r * cols..(r + 1) * cols].iter().sum();
        }
        Tensor::from_vec(out, &[rows]).expect("length equals rows")
    }

    /// Returns the per-row index of the maximum element of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index, matching `argmax` conventions.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        assert!(cols > 0, "argmax_rows requires at least one column");
        (0..rows)
            .map(|r| {
                let row = &self.data()[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // NCHW structure helpers
    // ------------------------------------------------------------------

    /// Extracts sample `n` of an NCHW tensor as a `[1, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or `n` is out of bounds.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "batch_item requires a rank-4 tensor");
        let [b, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        assert!(n < b, "batch index {n} out of bounds for batch size {b}");
        let stride = c * h * w;
        let slice = self.data()[n * stride..(n + 1) * stride].to_vec();
        Tensor::from_vec(slice, &[1, c, h, w]).expect("slice length matches item shape")
    }

    /// Stacks `[1, C, H, W]` tensors along the batch axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the per-item shapes differ.
    pub fn stack_batch(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack_batch requires at least one item");
        let first = items[0].shape().to_vec();
        assert_eq!(first.len(), 4, "stack_batch items must be rank-4");
        let mut data = Vec::with_capacity(items.iter().map(Tensor::len).sum());
        for item in items {
            assert_eq!(
                item.shape(),
                &first[..],
                "stack_batch items must share a shape"
            );
            data.extend_from_slice(item.data());
        }
        let shape = [items.len() * first[0], first[1], first[2], first[3]];
        Tensor::from_vec(data, &shape).expect("concatenated length matches shape")
    }

    /// Concatenates NCHW tensors along the channel axis.
    ///
    /// This is the operation performed by the Ensembler `Selector` when it
    /// combines the `P` activated server feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or batch/spatial dimensions differ.
    pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(
            !parts.is_empty(),
            "concat_channels requires at least one part"
        );
        let b = parts[0].shape()[0];
        let h = parts[0].shape()[2];
        let w = parts[0].shape()[3];
        let total_c: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.rank(), 4, "concat_channels parts must be rank-4");
                assert_eq!(p.shape()[0], b, "batch sizes must match");
                assert_eq!(p.shape()[2], h, "heights must match");
                assert_eq!(p.shape()[3], w, "widths must match");
                p.shape()[1]
            })
            .sum();
        let mut out = Tensor::zeros(&[b, total_c, h, w]);
        let plane = h * w;
        for n in 0..b {
            let mut c_off = 0usize;
            for part in parts {
                let pc = part.shape()[1];
                let src_base = n * pc * plane;
                let dst_base = n * total_c * plane + c_off * plane;
                out.data_mut()[dst_base..dst_base + pc * plane]
                    .copy_from_slice(&part.data()[src_base..src_base + pc * plane]);
                c_off += pc;
            }
        }
        out
    }

    /// Splits an NCHW tensor into equally-sized channel groups.
    ///
    /// Inverse of [`Tensor::concat_channels`] for equal-width parts.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or the channel count is not
    /// divisible by `groups`.
    pub fn split_channels(&self, groups: usize) -> Vec<Tensor> {
        assert_eq!(self.rank(), 4, "split_channels requires a rank-4 tensor");
        let [b, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        assert!(
            groups > 0 && c % groups == 0,
            "channels {c} not divisible by {groups}"
        );
        let gc = c / groups;
        let plane = h * w;
        (0..groups)
            .map(|g| {
                let mut part = Tensor::zeros(&[b, gc, h, w]);
                for n in 0..b {
                    let src = n * c * plane + g * gc * plane;
                    let dst = n * gc * plane;
                    part.data_mut()[dst..dst + gc * plane]
                        .copy_from_slice(&self.data()[src..src + gc * plane]);
                }
                part
            })
            .collect()
    }

    /// Adds a per-channel bias to an NCHW tensor, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or `bias` length differs from the
    /// channel count.
    pub fn add_channel_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 4, "add_channel_bias requires a rank-4 tensor");
        let [b, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        assert_eq!(bias.len(), c, "bias length must equal channel count");
        let mut out = self.clone();
        let plane = h * w;
        for n in 0..b {
            for ch in 0..c {
                let base = n * c * plane + ch * plane;
                let bv = bias.data()[ch];
                for v in &mut out.data_mut()[base..base + plane] {
                    *v += bv;
                }
            }
        }
        out
    }

    /// Sums an NCHW tensor over batch and spatial axes, producing `[C]`.
    ///
    /// Used for convolution bias gradients and batch-norm statistics.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4.
    pub fn sum_per_channel(&self) -> Tensor {
        assert_eq!(self.rank(), 4, "sum_per_channel requires a rank-4 tensor");
        let [b, c, h, w] = [
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        ];
        let plane = h * w;
        let mut out = vec![0.0f32; c];
        for n in 0..b {
            for (ch, slot) in out.iter_mut().enumerate() {
                let base = n * c * plane + ch * plane;
                *slot += self.data()[base..base + plane].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(out, &[c]).expect("length equals channel count")
    }

    /// Per-sample cosine similarity between two tensors of identical shape,
    /// flattening everything but the batch axis. Returns a `[batch]` tensor.
    ///
    /// This is the `CS(·,·)` term of the stage-3 regularizer (Eq. 3 of the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or the tensors are rank-0.
    pub fn cosine_similarity_per_sample(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shapes must match");
        assert!(self.rank() >= 1, "cosine similarity requires rank >= 1");
        let batch = self.shape()[0];
        let features = self.len().checked_div(batch).unwrap_or(0);
        let mut out = vec![0.0f32; batch];
        for (n, slot) in out.iter_mut().enumerate() {
            let a = &self.data()[n * features..(n + 1) * features];
            let b = &other.data()[n * features..(n + 1) * features];
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            *slot = if na > 1e-12 && nb > 1e-12 {
                dot / (na * nb)
            } else {
                0.0
            };
        }
        Tensor::from_vec(out, &[batch]).expect("length equals batch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        let eye = Tensor::from_fn(&[3, 3], |i| if i % 4 == 0 { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye).data(), a.data());
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = Tensor::from_fn(&[4, 3], |i| (i as f32).sin());
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32).cos());
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose2().matmul(&b);
        for (x, y) in via_tn.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::from_fn(&[5, 3], |i| (i as f32) * 0.1);
        let d = Tensor::from_fn(&[4, 3], |i| (i as f32) * 0.2 - 1.0);
        let via_nt = c.matmul_nt(&d);
        let explicit2 = c.matmul(&d.transpose2());
        for (x, y) in via_nt.data().iter().zip(explicit2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_propagates_non_finite_rhs_through_zero_lhs() {
        // Regression: the old kernels skipped zero lhs entries, silently
        // laundering 0 x NaN and 0 x inf into 0.0 instead of NaN.
        let zeros = Tensor::zeros(&[2, 2]);
        let bad = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, 2.0], &[2, 2]).unwrap();
        for v in zeros.matmul(&bad).data() {
            assert!(v.is_nan(), "matmul swallowed a non-finite rhs: {v}");
        }
        for v in zeros.matmul_tn(&bad).data() {
            assert!(v.is_nan(), "matmul_tn swallowed a non-finite rhs: {v}");
        }
        let bad_nt = Tensor::from_vec(vec![f32::NAN, 1.0, f32::INFINITY, 2.0], &[2, 2]).unwrap();
        for v in zeros.matmul_nt(&bad_nt).data() {
            assert!(v.is_nan(), "matmul_nt swallowed a non-finite rhs: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axis_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis0().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis1().data(), &[6.0, 15.0]);
    }

    #[test]
    fn argmax_rows_with_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn batch_item_and_stack_round_trip() {
        let t = Tensor::from_fn(&[3, 2, 2, 2], |i| i as f32);
        let items: Vec<Tensor> = (0..3).map(|n| t.batch_item(n)).collect();
        let back = Tensor::stack_batch(&items);
        assert_eq!(back, t);
    }

    #[test]
    fn concat_and_split_channels_round_trip() {
        let a = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(&[2, 3, 2, 2], |i| 100.0 + i as f32);
        let cat = Tensor::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 6, 2, 2]);
        let parts = cat.split_channels(2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        // Channel data interleaves per sample, not per part.
        assert_eq!(cat.at4(0, 0, 0, 0), a.at4(0, 0, 0, 0));
        assert_eq!(cat.at4(0, 3, 0, 0), b.at4(0, 0, 0, 0));
        assert_eq!(cat.at4(1, 3, 0, 0), b.at4(1, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "batch sizes must match")]
    fn concat_channels_rejects_mismatched_batch() {
        let a = Tensor::zeros(&[1, 2, 2, 2]);
        let b = Tensor::zeros(&[2, 2, 2, 2]);
        let _ = Tensor::concat_channels(&[&a, &b]);
    }

    #[test]
    fn channel_bias_and_sum() {
        let t = Tensor::ones(&[2, 3, 2, 2]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let biased = t.add_channel_bias(&bias);
        assert_eq!(biased.at4(0, 0, 0, 0), 2.0);
        assert_eq!(biased.at4(1, 2, 1, 1), 4.0);
        let sums = biased.sum_per_channel();
        // Each channel has 2 batches * 4 pixels = 8 entries.
        assert_eq!(sums.data(), &[16.0, 24.0, 32.0]);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[2, 2]).unwrap();
        let cs = a.cosine_similarity_per_sample(&b);
        assert!((cs.data()[0] - 1.0).abs() < 1e-6);
        assert!((cs.data()[1] + 1.0).abs() < 1e-6);
        // Zero vector yields similarity 0 rather than NaN.
        let z = Tensor::zeros(&[1, 4]);
        let o = Tensor::ones(&[1, 4]);
        assert_eq!(z.cosine_similarity_per_sample(&o).data(), &[0.0]);
    }
}
