//! Int8 quantization: per-tensor symmetric scales, quantized tensor types and
//! a packed, blocked `i8×i8→i32` GEMM kernel.
//!
//! The quantization scheme is **symmetric, per tensor**: a tensor is stored as
//! `i8` values `q` plus one `f32` scale such that `value ≈ q · scale`, with
//! `scale = absmax / 127`. There is no zero point, so `0.0` always quantizes
//! to `0` — zero padding (im2col borders) survives quantization exactly. The
//! round-trip error is at most `scale / 2` per element, which the property
//! suite enforces.
//!
//! Two container types cover the two uses in the stack:
//!
//! * [`QTensor`] — one scale for the whole tensor. Used for **weights**,
//!   which are quantized once, ahead of time.
//! * [`QTensorBatch`] — one scale **per axis-0 sample**. Used for
//!   **activations**: each sample's scale depends only on that sample's
//!   values, so quantizing a coalesced mini-batch equals quantizing each
//!   request alone. This is what lets the inference engine keep its
//!   bit-exactness-across-batch-size guarantee in int8 mode.
//!
//! [`qgemm_nn`] mirrors the blocked `f32` kernel of [`crate::gemm`]: packed
//! operand panels, a runtime-dispatched AVX2 micro-kernel (`vpmaddwd` over
//! sign-extended `i16` pairs — exact, no saturation) with a portable fallback,
//! and row-band parallelism. Because integer accumulation is exact, every
//! path — serial, parallel, AVX2, portable, small-product — produces
//! bit-identical results, which the oracle property tests assert.
//!
//! # Examples
//!
//! ```
//! use ensembler_tensor::{QTensor, Tensor};
//!
//! let t = Tensor::from_vec(vec![-1.0, 0.5, 1.27], &[3])?;
//! let q = QTensor::quantize(&t);
//! let back = q.dequantize();
//! for (x, y) in t.data().iter().zip(back.data()) {
//!     assert!((x - y).abs() <= q.scale() / 2.0 + f32::EPSILON);
//! }
//! # Ok::<(), ensembler_tensor::ShapeError>(())
//! ```

use crate::gemm::Parallelism;
use crate::parallel::par_map;
use crate::{ShapeError, Tensor};

/// Rows of the register tile held by the portable int8 micro-kernel. On
/// x86-64 hosts with AVX2 a wider 6×16 tile is selected at runtime instead.
pub const QMR: usize = 4;
/// Columns of the register tile held by the portable int8 micro-kernel.
pub const QNR: usize = 8;
/// Depth of the shared-dimension cache block (kept even: the kernel walks
/// `k` in sign-extended `i16` pairs).
pub const QKC: usize = 256;
/// Output rows per parallel band.
pub const QMC: usize = 128;

/// Below this many right-operand elements (`k·n`) the kernel skips packing
/// and runs a plain register-friendly triple loop. Integer accumulation is
/// exact, so unlike the f32 kernel this threshold cannot change results —
/// it exists purely to spare tiny products the packing cost.
pub const QSMALL_THRESHOLD: usize = 32 * 32;

/// At or above this many multiply-accumulates (`m·k·n`) the kernel splits
/// row bands across cores.
pub const QPAR_THRESHOLD: usize = 1 << 20;

/// Largest shared dimension the kernel accepts: each `k`-pair contributes at
/// most `2 · 127² = 32258` to an `i32` accumulator, so `k ≤ 2¹⁷` keeps the
/// worst-case sum below `i32::MAX` with margin.
pub const QGEMM_MAX_K: usize = 1 << 17;

/// The scale mapping a tensor's absolute maximum onto the `i8` grid:
/// `absmax / 127`, guarded against two degenerate regions.
///
/// * A quotient that is not positive and finite — an all-zero (or empty)
///   tensor, or a division that underflowed all the way to `0.0` — falls
///   back to `1.0`.
/// * A **positive subnormal** quotient (absmax below ~`1.5e-36`, which
///   conv+bn folding can produce by shrinking a weight tensor's magnitudes)
///   is clamped up to [`f32::MIN_POSITIVE`]. A subnormal scale passes a
///   naive `> 0.0` check, but its reciprocal — the factor the quantization
///   loop multiplies by — overflows to `+inf`, which would send every
///   non-zero value to `±127` regardless of magnitude and break the
///   `scale / 2` round-trip bound.
///
/// Both fallbacks keep every scale valid for the wire codec (which rejects
/// non-positive scales), keep `1 / scale` finite, and still round-trip
/// within the `scale / 2` bound: values that small all quantize to `0`.
pub fn quantization_scale(absmax: f32) -> f32 {
    let scale = absmax / 127.0;
    if scale.is_finite() && scale >= f32::MIN_POSITIVE {
        scale
    } else if scale > 0.0 {
        f32::MIN_POSITIVE
    } else {
        1.0
    }
}

/// Largest absolute value of a slice (0 for an empty slice).
///
/// Computed as an integer maximum over the sign-stripped IEEE bit patterns:
/// for finite floats the unsigned bit order equals the magnitude order, and
/// unlike a float `max` fold the integer reduction auto-vectorises on the
/// baseline target. Non-finite inputs are unsupported (as documented on
/// [`QTensor::quantize`]).
fn absmax(values: &[f32]) -> f32 {
    let bits = values
        .iter()
        .fold(0u32, |m, v| m.max(v.to_bits() & 0x7FFF_FFFF));
    f32::from_bits(bits)
}

/// Quantizes `values` onto the `i8` grid defined by `scale` (round half away
/// from zero, saturating at ±127). Dispatches to an AVX2-compiled copy of
/// the loop where available: the baseline x86-64 target lowers `f32::round`
/// to a libm call per element, while under AVX2 the whole loop vectorises.
fn quantize_into(values: &[f32], scale: f32, out: &mut [i8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature checked above; the function is otherwise safe.
            unsafe { quantize_into_avx2(values, scale, out) };
            return;
        }
    }
    quantize_into_body(values, scale, out);
}

/// The quantization loop, compiled for AVX2 so it auto-vectorises. Only
/// called after a runtime feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_into_avx2(values: &[f32], scale: f32, out: &mut [i8]) {
    quantize_into_body(values, scale, out);
}

#[inline(always)]
fn quantize_into_body(values: &[f32], scale: f32, out: &mut [i8]) {
    let inv = 1.0 / scale;
    for (slot, &v) in out.iter_mut().zip(values) {
        *slot = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
}

/// Dequantizes `q · scale` into `out`.
fn dequantize_into(q: &[i8], scale: f32, out: &mut [f32]) {
    for (slot, &v) in out.iter_mut().zip(q) {
        *slot = v as f32 * scale;
    }
}

/// A dense row-major `i8` tensor with one per-tensor symmetric scale:
/// `value ≈ data · scale`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::{QTensor, Tensor};
///
/// let w = Tensor::from_vec(vec![2.0, -2.0, 1.0, 0.0], &[2, 2])?;
/// let q = QTensor::quantize(&w);
/// assert_eq!(q.shape(), &[2, 2]);
/// assert_eq!(q.data(), &[127, -127, 64, 0]); // scale = 2/127
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
}

impl QTensor {
    /// Quantizes a tensor with one symmetric per-tensor scale computed from
    /// its absolute maximum. Non-finite inputs are unsupported (NaN maps to
    /// 0, infinities saturate).
    pub fn quantize(t: &Tensor) -> Self {
        let scale = quantization_scale(absmax(t.data()));
        let mut data = vec![0i8; t.len()];
        quantize_into(t.data(), scale, &mut data);
        Self {
            shape: t.shape().to_vec(),
            data,
            scale,
        }
    }

    /// Reassembles a quantized tensor from its parts (the wire-decode path).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the data length does not match the shape
    /// or the scale is not finite and positive.
    pub fn from_parts(data: Vec<i8>, shape: &[usize], scale: f32) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::new(format!(
                "expected {expected} i8 elements for shape {shape:?}, got {}",
                data.len()
            )));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ShapeError::new(format!(
                "quantization scale must be finite and positive, got {scale}"
            )));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
            scale,
        })
    }

    /// Reconstructs the `f32` tensor `data · scale`.
    pub fn dequantize(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        dequantize_into(&self.data, self.scale, &mut out);
        Tensor::from_vec(out, &self.shape).expect("dequantize preserves the element count")
    }

    /// The shape as a slice of axis extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The quantized values in row-major order.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-tensor scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A dense row-major `i8` tensor with one symmetric scale **per axis-0
/// sample**.
///
/// Each sample's scale is computed from that sample's values alone, so
/// quantizing a stacked batch produces exactly the bytes and scales of
/// quantizing each sample individually — the property that keeps request
/// coalescing transparent in int8 mode, and the reason the wire protocol
/// ships this type rather than a whole-batch [`QTensor`].
///
/// # Examples
///
/// ```
/// use ensembler_tensor::{QTensorBatch, Tensor};
///
/// let batch = Tensor::from_vec(vec![1.0, -0.5, 10.0, 20.0], &[2, 2])?;
/// let q = QTensorBatch::quantize_batch(&batch);
/// // Each row got its own scale: 1/127 and 20/127.
/// assert_eq!(q.scales().len(), 2);
/// assert!(q.scales()[1] > q.scales()[0]);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensorBatch {
    shape: Vec<usize>,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QTensorBatch {
    /// Quantizes a rank-≥1 tensor with one symmetric scale per axis-0 slice.
    ///
    /// # Panics
    ///
    /// Panics if `t` is rank-0.
    pub fn quantize_batch(t: &Tensor) -> Self {
        assert!(t.rank() >= 1, "quantize_batch requires rank >= 1");
        let batch = t.shape()[0];
        let sample_len = t.len().checked_div(batch).unwrap_or(0);
        let mut data = vec![0i8; t.len()];
        let mut scales = Vec::with_capacity(batch);
        for n in 0..batch {
            let span = n * sample_len..(n + 1) * sample_len;
            let sample = &t.data()[span.clone()];
            let scale = quantization_scale(absmax(sample));
            quantize_into(sample, scale, &mut data[span]);
            scales.push(scale);
        }
        Self {
            shape: t.shape().to_vec(),
            data,
            scales,
        }
    }

    /// Reassembles a batch from its parts (the wire-decode path).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shape is rank-0, the data length does
    /// not match the shape, the scale count differs from the batch extent, or
    /// any scale is not finite and positive.
    pub fn from_parts(
        data: Vec<i8>,
        shape: &[usize],
        scales: Vec<f32>,
    ) -> Result<Self, ShapeError> {
        if shape.is_empty() {
            return Err(ShapeError::new(
                "a quantized batch needs at least one axis".to_string(),
            ));
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::new(format!(
                "expected {expected} i8 elements for shape {shape:?}, got {}",
                data.len()
            )));
        }
        if scales.len() != shape[0] {
            return Err(ShapeError::new(format!(
                "expected {} per-sample scales for shape {shape:?}, got {}",
                shape[0],
                scales.len()
            )));
        }
        if let Some(bad) = scales.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
            return Err(ShapeError::new(format!(
                "per-sample scales must be finite and positive, got {bad}"
            )));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
            scales,
        })
    }

    /// Reconstructs the `f32` tensor, scaling each axis-0 slice by its own
    /// scale.
    pub fn dequantize(&self) -> Tensor {
        let sample_len = self.sample_len();
        let mut out = vec![0.0f32; self.data.len()];
        for (n, &scale) in self.scales.iter().enumerate() {
            let span = n * sample_len..(n + 1) * sample_len;
            dequantize_into(&self.data[span.clone()], scale, &mut out[span]);
        }
        Tensor::from_vec(out, &self.shape).expect("dequantize preserves the element count")
    }

    /// Concatenates batches along axis 0. Bytes and scales are copied
    /// verbatim, so stacking commutes exactly with [`Self::quantize_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the trailing shapes differ.
    pub fn stack(items: &[QTensorBatch]) -> QTensorBatch {
        assert!(!items.is_empty(), "stack requires at least one batch");
        let tail = &items[0].shape[1..];
        let mut shape = items[0].shape.clone();
        shape[0] = 0;
        let mut data = Vec::new();
        let mut scales = Vec::new();
        for item in items {
            assert_eq!(
                &item.shape[1..],
                tail,
                "stacked quantized batches must share a trailing shape"
            );
            shape[0] += item.shape[0];
            data.extend_from_slice(&item.data);
            scales.extend_from_slice(&item.scales);
        }
        QTensorBatch {
            shape,
            data,
            scales,
        }
    }

    /// Extracts sample `n` as a batch of one (bytes and scale copied
    /// verbatim, the exact inverse of [`Self::stack`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn sample(&self, n: usize) -> QTensorBatch {
        assert!(n < self.batch(), "sample index {n} out of range");
        let sample_len = self.sample_len();
        let mut shape = self.shape.clone();
        shape[0] = 1;
        QTensorBatch {
            shape,
            data: self.data[n * sample_len..(n + 1) * sample_len].to_vec(),
            scales: vec![self.scales[n]],
        }
    }

    /// The shape as a slice of axis extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The quantized values in row-major order.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-sample scales (one per axis-0 slice).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The axis-0 extent.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }

    /// Elements per axis-0 slice.
    pub fn sample_len(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// One register-tile update over packed int8 panels. The A panel stores each
/// row's `k`-pairs as an `i32` word holding two sign-extended `i16` lanes;
/// the B panel stores, per `k`-pair, `nr` column pairs as interleaved `i16`.
type QMicroKernelFn = fn(
    apanel: &[i32],
    bpanel: &[i16],
    kc2: usize,
    c: &mut [i32],
    ldc: usize,
    tile_rows: usize,
    cols: usize,
);

#[derive(Clone, Copy)]
struct QKernelConfig {
    mr: usize,
    nr: usize,
    micro: QMicroKernelFn,
}

/// Picks the widest int8 micro-kernel the host supports.
fn qkernel_config() -> QKernelConfig {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return QKernelConfig {
                mr: qavx2::MR,
                nr: qavx2::NR,
                micro: qavx2::microkernel,
            };
        }
    }
    QKernelConfig {
        mr: QMR,
        nr: QNR,
        micro: portable_qmicrokernel,
    }
}

/// `C = A·B` for row-major `a: [m,k]` of `i8` and `b: [k,n]` of `i8`,
/// returning row-major `[m,n]` of exact `i32` sums.
///
/// Serial below [`QPAR_THRESHOLD`] multiply-accumulates, parallel above; use
/// [`qgemm_nn_with`] to force either path. All code paths (packed AVX2,
/// packed portable, small-product loop, serial, parallel) produce
/// bit-identical results because integer accumulation is exact.
///
/// # Panics
///
/// Panics if `a.len() != m*k`, `b.len() != k*n`, or `k > `[`QGEMM_MAX_K`]
/// (the bound that keeps `i32` accumulators from overflowing).
///
/// # Examples
///
/// ```
/// use ensembler_tensor::qgemm_nn;
///
/// // [2,2] x [2,2]
/// let c = qgemm_nn(&[1, 2, 3, 4], &[5, 6, 7, 8], 2, 2, 2);
/// assert_eq!(c, vec![19, 22, 43, 50]);
/// ```
pub fn qgemm_nn(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    qgemm_nn_with(a, b, m, k, n, Parallelism::Auto)
}

/// [`qgemm_nn`] with an explicit serial/parallel choice.
///
/// # Panics
///
/// Panics under the same conditions as [`qgemm_nn`].
pub fn qgemm_nn_with(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "qgemm_nn lhs length must be m*k");
    assert_eq!(b.len(), k * n, "qgemm_nn rhs length must be k*n");
    assert!(
        k <= QGEMM_MAX_K,
        "qgemm_nn shared dimension {k} exceeds the i32-overflow bound {QGEMM_MAX_K}"
    );
    let mut out = vec![0i32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    if k * n < QSMALL_THRESHOLD {
        qgemm_small(a, b, m, k, n, &mut out);
        return out;
    }
    let cfg = qkernel_config();
    let bp = pack_b_q(b, k, n, cfg.nr);
    let kc2_total = k.div_ceil(2);

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let want_parallel = match par {
        Parallelism::Serial => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => workers > 1 && m > cfg.mr && m * k * n >= QPAR_THRESHOLD,
    };

    let band_rows = if want_parallel && m <= QMC {
        let per_worker = m.div_ceil(workers.max(2));
        per_worker.div_ceil(cfg.mr) * cfg.mr
    } else {
        QMC
    };
    let bands: Vec<(usize, usize)> = (0..m)
        .step_by(band_rows)
        .map(|row0| (row0, band_rows.min(m - row0)))
        .collect();

    if want_parallel && bands.len() > 1 {
        let compute = |&(row0, rows): &(usize, usize)| -> Vec<i32> {
            let mut band = vec![0i32; rows * n];
            qgemm_band(a, &bp, row0, rows, k, kc2_total, n, cfg, &mut band);
            band
        };
        for ((row0, rows), band) in bands.iter().zip(par_map(&bands, compute)) {
            out[row0 * n..(row0 + rows) * n].copy_from_slice(&band);
        }
    } else {
        for &(row0, rows) in &bands {
            qgemm_band(
                a,
                &bp,
                row0,
                rows,
                k,
                kc2_total,
                n,
                cfg,
                &mut out[row0 * n..(row0 + rows) * n],
            );
        }
    }
    out
}

/// The dequantization tail fused onto [`qgemm_nn_dequant`]: per-output-row
/// scales, an optional per-column bias and an optional `max(0, ·)` ReLU,
/// applied to the live `i32` accumulators of each completed row band.
///
/// This is what lets the compiled int8 plan stop round-tripping through
/// separate dequantize / bias / activation passes at every layer boundary:
/// the `i32` sums leave the kernel already converted with
/// `acc as f32 * row_scale + bias` — the exact expression the eager
/// quantized layers use, so fusion is bit-exact.
#[derive(Debug, Clone, Copy)]
pub struct QGemmEpilogue<'a> {
    /// Per-row dequantization factor (length `m`). For the quantized layers
    /// this is `activation_scale(sample) * weight_scale`, precomputed per
    /// output row exactly as the eager dequant loop computes it.
    pub row_scales: &'a [f32],
    /// Per-column `f32` bias added after dequantization (length `n`).
    pub bias: Option<&'a [f32]>,
    /// Apply `max(0.0, v)` after the bias — the formulation the eager
    /// quantized residual blocks use, so folded conv+bn+relu stages match
    /// their f32-bn counterparts' activation semantics.
    pub relu: bool,
}

/// Converts one band of `i32` accumulators (rows `row0..row0+rows` of the
/// product) into `f32` through the fused epilogue.
fn dequant_band(acc: &[i32], row0: usize, n: usize, ep: &QGemmEpilogue, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    for (r, (arow, orow)) in acc.chunks_exact(n).zip(out.chunks_exact_mut(n)).enumerate() {
        let s = ep.row_scales[row0 + r];
        match ep.bias {
            Some(bias) => {
                for ((o, &a), &bv) in orow.iter_mut().zip(arow).zip(bias) {
                    *o = a as f32 * s + bv;
                }
            }
            None => {
                for (o, &a) in orow.iter_mut().zip(arow) {
                    *o = a as f32 * s;
                }
            }
        }
        if ep.relu {
            for o in orow.iter_mut() {
                *o = o.max(0.0);
            }
        }
    }
}

/// [`qgemm_nn`] with the dequantization fused onto the kernel: returns `f32`
/// directly, converting each row band's `i32` accumulators while they are
/// cache-hot instead of materialising the integer product and running
/// separate dequantize / bias / ReLU passes over memory.
///
/// Bit-identical to [`qgemm_nn_with`] followed by
/// `acc as f32 * row_scales[i] + bias[j]` (and `max(0.0)` when `relu` is
/// set), on every code path — the integer accumulation is exact and the
/// float conversion applies the same expression per element.
///
/// # Panics
///
/// Panics under the same conditions as [`qgemm_nn`], or if
/// `ep.row_scales.len() != m`, or if a bias is present with length other
/// than `n`.
pub fn qgemm_nn_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
    ep: QGemmEpilogue,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "qgemm_nn lhs length must be m*k");
    assert_eq!(b.len(), k * n, "qgemm_nn rhs length must be k*n");
    assert!(
        k <= QGEMM_MAX_K,
        "qgemm_nn shared dimension {k} exceeds the i32-overflow bound {QGEMM_MAX_K}"
    );
    assert_eq!(
        ep.row_scales.len(),
        m,
        "epilogue row_scales length must be m"
    );
    if let Some(bias) = ep.bias {
        assert_eq!(bias.len(), n, "epilogue bias length must be n");
    }
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    if k == 0 || k * n < QSMALL_THRESHOLD {
        // Small products: integer triple loop into a reusable one-row
        // accumulator, dequantized row by row.
        let mut acc = vec![0i32; n];
        for i in 0..m {
            acc.fill(0);
            qgemm_small(&a[i * k..(i + 1) * k], b, 1, k, n, &mut acc);
            dequant_band(&acc, i, n, &ep, &mut out[i * n..(i + 1) * n]);
        }
        return out;
    }
    let cfg = qkernel_config();
    let bp = pack_b_q(b, k, n, cfg.nr);
    let kc2_total = k.div_ceil(2);

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let want_parallel = match par {
        Parallelism::Serial => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => workers > 1 && m > cfg.mr && m * k * n >= QPAR_THRESHOLD,
    };

    let band_rows = if want_parallel && m <= QMC {
        let per_worker = m.div_ceil(workers.max(2));
        per_worker.div_ceil(cfg.mr) * cfg.mr
    } else {
        QMC
    };
    let bands: Vec<(usize, usize)> = (0..m)
        .step_by(band_rows)
        .map(|row0| (row0, band_rows.min(m - row0)))
        .collect();

    if want_parallel && bands.len() > 1 {
        let compute = |&(row0, rows): &(usize, usize)| -> Vec<f32> {
            let mut acc = vec![0i32; rows * n];
            qgemm_band(a, &bp, row0, rows, k, kc2_total, n, cfg, &mut acc);
            let mut band = vec![0.0f32; rows * n];
            dequant_band(&acc, row0, n, &ep, &mut band);
            band
        };
        for ((row0, rows), band) in bands.iter().zip(par_map(&bands, compute)) {
            out[row0 * n..(row0 + rows) * n].copy_from_slice(&band);
        }
    } else {
        // Serial: one reusable i32 scratch band, dequantized into the output
        // right after it is produced (still cache-resident).
        let mut acc = vec![0i32; band_rows.min(m) * n];
        for &(row0, rows) in &bands {
            let scratch = &mut acc[..rows * n];
            scratch.fill(0);
            qgemm_band(a, &bp, row0, rows, k, kc2_total, n, cfg, scratch);
            dequant_band(scratch, row0, n, &ep, &mut out[row0 * n..(row0 + rows) * n]);
        }
    }
    out
}

/// Plain triple loop for products too small to amortise packing.
fn qgemm_small(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a[i * k + p] as i32;
            if a_ip == 0 {
                // Exact in integers: skipping a zero term cannot change the sum.
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * bv as i32;
            }
        }
    }
}

/// Packs the `[k,n]` right operand into `nr`-column panels of sign-extended
/// `i16`, with the `k` dimension interleaved in pairs.
///
/// Panel `jp` occupies `bp[jp*kc2*nr*2..]`; within it, `k`-pair `p` stores
/// columns `jp*nr..jp*nr+nr` as `[b[2p][j], b[2p+1][j]]` pairs — exactly the
/// operand layout `vpmaddwd` consumes. Ragged edges (odd `k`, `n` not a
/// multiple of `nr`) are zero-padded.
fn pack_b_q(b: &[i8], k: usize, n: usize, nr: usize) -> Vec<i16> {
    let kc2 = k.div_ceil(2);
    let panels = n.div_ceil(nr);
    let mut bp = vec![0i16; panels * kc2 * nr * 2];
    for jp in 0..panels {
        let j0 = jp * nr;
        let cols = nr.min(n - j0);
        let panel = &mut bp[jp * kc2 * nr * 2..(jp + 1) * kc2 * nr * 2];
        for p in 0..kc2 {
            let sliver = &mut panel[p * nr * 2..(p + 1) * nr * 2];
            let row0 = &b[(2 * p) * n..(2 * p) * n + n];
            for (c, slot) in sliver.chunks_exact_mut(2).take(cols).enumerate() {
                slot[0] = row0[j0 + c] as i16;
            }
            if 2 * p + 1 < k {
                let row1 = &b[(2 * p + 1) * n..(2 * p + 1) * n + n];
                for (c, slot) in sliver.chunks_exact_mut(2).take(cols).enumerate() {
                    slot[1] = row1[j0 + c] as i16;
                }
            }
        }
    }
    bp
}

/// Computes `rows` output rows starting at `row0` into `band`, blocking the
/// shared dimension by [`QKC`] and packing A row panels on the fly as `i32`
/// words of sign-extended `i16` pairs.
#[allow(clippy::too_many_arguments)]
fn qgemm_band(
    a: &[i8],
    bp: &[i16],
    row0: usize,
    rows: usize,
    k: usize,
    kc2_total: usize,
    n: usize,
    cfg: QKernelConfig,
    band: &mut [i32],
) {
    let (mr, nr) = (cfg.mr, cfg.nr);
    let row_panels = rows.div_ceil(mr);
    let col_panels = n.div_ceil(nr);
    let mut apack = vec![0i32; row_panels * (QKC / 2) * mr];

    let mut pc = 0; // shared-dimension offset, in k units (always even)
    while pc < k {
        let kc = QKC.min(k - pc);
        let kc2 = kc.div_ceil(2);
        // Pack row-major: each valid row reads its contiguous k-slice once
        // and scatters pair words at stride `mr`, which keeps the per-element
        // cost to a couple of ALU ops (no bounds checks in the pair loop).
        for ir in 0..row_panels {
            let panel = &mut apack[ir * kc2 * mr..(ir + 1) * kc2 * mr];
            for r in 0..mr {
                let i = row0 + ir * mr + r;
                if i >= row0 + rows {
                    for p in 0..kc2 {
                        panel[p * mr + r] = 0;
                    }
                    continue;
                }
                let row = &a[i * k + pc..i * k + pc + kc];
                let mut chunks = row.chunks_exact(2);
                for (p, pair) in chunks.by_ref().enumerate() {
                    let a0 = pair[0] as i16 as u16 as u32;
                    let a1 = pair[1] as i16 as u16 as u32;
                    panel[p * mr + r] = (a0 | (a1 << 16)) as i32;
                }
                if let [last] = *chunks.remainder() {
                    panel[(kc2 - 1) * mr + r] = last as i16 as u16 as u32 as i32;
                }
            }
        }
        let p2_0 = pc / 2; // pair offset of this KC block in the packed B
        for jp in 0..col_panels {
            let panel_base = jp * kc2_total * nr * 2;
            let bpanel = &bp[panel_base + p2_0 * nr * 2..panel_base + (p2_0 + kc2) * nr * 2];
            let j0 = jp * nr;
            let cols = nr.min(n - j0);
            for ir in 0..row_panels {
                let apanel = &apack[ir * kc2 * mr..(ir + 1) * kc2 * mr];
                let r0 = ir * mr;
                let tile_rows = mr.min(rows - r0);
                (cfg.micro)(
                    apanel,
                    bpanel,
                    kc2,
                    &mut band[r0 * n + j0..],
                    n,
                    tile_rows,
                    cols,
                );
            }
        }
        pc += kc;
    }
}

/// Accumulates a [`QMR`]`×`[`QNR`] register tile over `kc2` shared-dimension
/// pairs and adds the valid region into `c`. Pure safe Rust.
fn portable_qmicrokernel(
    apanel: &[i32],
    bpanel: &[i16],
    kc2: usize,
    c: &mut [i32],
    ldc: usize,
    tile_rows: usize,
    cols: usize,
) {
    let mut acc = [[0i32; QNR]; QMR];
    for p in 0..kc2 {
        let av: &[i32; QMR] = apanel[p * QMR..(p + 1) * QMR]
            .try_into()
            .expect("QMR sliver");
        let bv: &[i16; QNR * 2] = bpanel[p * QNR * 2..(p + 1) * QNR * 2]
            .try_into()
            .expect("QNR sliver");
        for r in 0..QMR {
            let a0 = av[r] as i16 as i32;
            let a1 = av[r] >> 16;
            for (j, slot) in acc[r].iter_mut().enumerate() {
                *slot += a0 * bv[2 * j] as i32 + a1 * bv[2 * j + 1] as i32;
            }
        }
    }
    for r in 0..tile_rows {
        let crow = &mut c[r * ldc..r * ldc + cols];
        for (o, &v) in crow.iter_mut().zip(&acc[r][..cols]) {
            *o += v;
        }
    }
}

/// AVX2 int8 micro-kernel: a 6×16 register tile of `i32` accumulators fed by
/// `vpmaddwd` over sign-extended `i16` pairs. Exact — the largest pair sum is
/// `2·127² = 32258`, well inside `i16`-product `i32` range, so unlike the
/// `vpmaddubsw` formulation there is no saturation to work around.
#[cfg(target_arch = "x86_64")]
mod qavx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_storeu_si256,
    };

    /// Register-tile rows of the AVX2 int8 kernel.
    pub(super) const MR: usize = 6;
    /// Register-tile columns (two 8-lane `i32` accumulators per row).
    pub(super) const NR: usize = 16;

    /// Safe entry point matching [`super::QMicroKernelFn`]. Only reachable
    /// through [`super::qkernel_config`], which verifies AVX2 first.
    pub(super) fn microkernel(
        apanel: &[i32],
        bpanel: &[i16],
        kc2: usize,
        c: &mut [i32],
        ldc: usize,
        tile_rows: usize,
        cols: usize,
    ) {
        debug_assert!(apanel.len() >= kc2 * MR && bpanel.len() >= kc2 * NR * 2);
        unsafe { microkernel_impl(apanel, bpanel, kc2, c, ldc, tile_rows, cols) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn microkernel_impl(
        apanel: &[i32],
        bpanel: &[i16],
        kc2: usize,
        c: &mut [i32],
        ldc: usize,
        tile_rows: usize,
        cols: usize,
    ) {
        let mut acc = [[_mm256_setzero_si256(); 2]; MR];
        let ap = apanel.as_ptr();
        let bpp = bpanel.as_ptr();
        for p in 0..kc2 {
            // 16 interleaved i16 = 8 column pairs; two loads cover 16 columns.
            let b0 = _mm256_loadu_si256(bpp.add(p * NR * 2) as *const __m256i);
            let b1 = _mm256_loadu_si256(bpp.add(p * NR * 2 + 16) as *const __m256i);
            for (r, row_acc) in acc.iter_mut().enumerate() {
                let va = _mm256_set1_epi32(*ap.add(p * MR + r));
                row_acc[0] = _mm256_add_epi32(row_acc[0], _mm256_madd_epi16(va, b0));
                row_acc[1] = _mm256_add_epi32(row_acc[1], _mm256_madd_epi16(va, b1));
            }
        }
        if tile_rows == MR && cols == NR {
            for (r, row_acc) in acc.iter().enumerate() {
                let crow = c.as_mut_ptr().add(r * ldc);
                let lo = _mm256_loadu_si256(crow as *const __m256i);
                _mm256_storeu_si256(crow as *mut __m256i, _mm256_add_epi32(lo, row_acc[0]));
                let hi = _mm256_loadu_si256(crow.add(8) as *const __m256i);
                _mm256_storeu_si256(
                    crow.add(8) as *mut __m256i,
                    _mm256_add_epi32(hi, row_acc[1]),
                );
            }
        } else {
            let mut spill = [0i32; MR * NR];
            for (r, row_acc) in acc.iter().enumerate() {
                _mm256_storeu_si256(spill.as_mut_ptr().add(r * NR) as *mut __m256i, row_acc[0]);
                _mm256_storeu_si256(
                    spill.as_mut_ptr().add(r * NR + 8) as *mut __m256i,
                    row_acc[1],
                );
            }
            for r in 0..tile_rows {
                let crow = &mut c[r * ldc..r * ldc + cols];
                for (o, &v) in crow.iter_mut().zip(&spill[r * NR..r * NR + cols]) {
                    *o += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_qgemm(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc += a[i * k + p] as i32 * b[p * n + j] as i32;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn pseudo_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as i64 % 255 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn quantize_roundtrip_is_within_half_a_step() {
        let t = Tensor::from_fn(&[64], |i| ((i as f32) * 0.37).sin() * 3.0);
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        for (x, y) in t.data().iter().zip(back.data()) {
            assert!((x - y).abs() <= q.scale() * 0.500001, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_and_extreme_values_quantize_exactly() {
        let t = Tensor::from_vec(vec![0.0, 4.0, -4.0, 2.0], &[4]).unwrap();
        let q = QTensor::quantize(&t);
        assert_eq!(q.data(), &[0, 127, -127, 64]);
        let all_zero = QTensor::quantize(&Tensor::zeros(&[3]));
        assert_eq!(all_zero.scale(), 1.0);
        assert_eq!(all_zero.dequantize().data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn subnormal_absmax_falls_back_to_a_valid_scale() {
        // absmax > 0 but absmax/127 underflows to 0.0: the scale must stay
        // positive (the wire codec rejects non-positive scales) and the
        // values, all far below scale/2, quantize to zero.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(tiny / 127.0, 0.0, "division underflows by construction");
        let q = QTensor::quantize(&Tensor::from_vec(vec![tiny, -tiny], &[2]).unwrap());
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.data(), &[0, 0]);
        let qb = QTensorBatch::quantize_batch(&Tensor::full(&[2, 2], tiny));
        assert!(qb.scales().iter().all(|s| *s > 0.0));
    }

    #[test]
    fn from_parts_validates() {
        assert!(QTensor::from_parts(vec![1, 2], &[3], 0.5).is_err());
        assert!(QTensor::from_parts(vec![1, 2, 3], &[3], 0.0).is_err());
        assert!(QTensor::from_parts(vec![1, 2, 3], &[3], f32::NAN).is_err());
        assert!(QTensor::from_parts(vec![1, 2, 3], &[3], 0.5).is_ok());
        assert!(QTensorBatch::from_parts(vec![1, 2], &[2, 1], vec![0.5]).is_err());
        assert!(QTensorBatch::from_parts(vec![1, 2], &[], vec![]).is_err());
        assert!(QTensorBatch::from_parts(vec![1, 2], &[2, 1], vec![0.5, -1.0]).is_err());
        assert!(QTensorBatch::from_parts(vec![1, 2], &[2, 1], vec![0.5, 0.25]).is_ok());
    }

    #[test]
    fn batch_quantization_is_per_sample() {
        let t = Tensor::from_vec(vec![1.0, 0.5, 100.0, -50.0], &[2, 2]).unwrap();
        let q = QTensorBatch::quantize_batch(&t);
        // Sample 0 keeps full resolution despite sample 1's large values.
        assert_eq!(q.data()[0], 127);
        assert_eq!(q.data()[2], 127);
        let back = q.dequantize();
        for (n, (x, y)) in t.data().iter().zip(back.data()).enumerate() {
            assert!((x - y).abs() <= q.scales()[n / 2] * 0.500001);
        }
    }

    #[test]
    fn stack_and_sample_commute_with_quantization() {
        let a = Tensor::from_fn(&[1, 3], |i| i as f32 - 1.0);
        let b = Tensor::from_fn(&[2, 3], |i| (i as f32) * 10.0);
        let stacked = QTensorBatch::stack(&[
            QTensorBatch::quantize_batch(&a),
            QTensorBatch::quantize_batch(&b),
        ]);
        let whole =
            Tensor::from_vec(a.data().iter().chain(b.data()).copied().collect(), &[3, 3]).unwrap();
        assert_eq!(stacked, QTensorBatch::quantize_batch(&whole));
        assert_eq!(stacked.sample(0), QTensorBatch::quantize_batch(&a));
        assert_eq!(stacked.batch(), 3);
        assert_eq!(stacked.sample_len(), 3);
    }

    #[test]
    fn qgemm_matches_the_naive_oracle_on_blocked_shapes() {
        for &(m, k, n) in &[(40, 41, 43), (5, QKC + 7, 9), (1, 700, 2), (70, 33, 37)] {
            let a = pseudo_i8(m * k, (m * 31 + k) as u64);
            let b = pseudo_i8(k * n, (n * 17 + k) as u64);
            let want = naive_qgemm(&a, &b, m, k, n);
            assert_eq!(
                qgemm_nn_with(&a, &b, m, k, n, Parallelism::Serial),
                want,
                "serial mismatch at {m}x{k}x{n}"
            );
            assert_eq!(
                qgemm_nn_with(&a, &b, m, k, n, Parallelism::Parallel),
                want,
                "parallel mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn qgemm_empty_dimensions_yield_zero_filled_output() {
        assert_eq!(qgemm_nn(&[], &[], 0, 0, 0), Vec::<i32>::new());
        assert_eq!(qgemm_nn(&[], &[], 2, 0, 3), vec![0; 6]);
    }

    #[test]
    #[should_panic(expected = "i32-overflow bound")]
    fn qgemm_rejects_overflow_prone_k() {
        let _ = qgemm_nn(&[], &[], 0, QGEMM_MAX_K + 1, 0);
    }

    #[test]
    fn positive_subnormal_scale_is_clamped_to_a_normal_float() {
        // absmax/127 lands in the subnormal range: it passes a naive `> 0`
        // check, but its reciprocal is +inf and quantization would saturate
        // every nonzero value to ±127. The clamp keeps 1/scale finite.
        let absmax = f32::MIN_POSITIVE * 64.0; // absmax/127 is subnormal
        let s = absmax / 127.0;
        assert!(s > 0.0 && !s.is_normal(), "subnormal by construction");
        let scale = quantization_scale(absmax);
        assert_eq!(scale, f32::MIN_POSITIVE);
        assert!((1.0 / scale).is_finite());
        let q = QTensor::quantize(&Tensor::from_vec(vec![absmax, -absmax, 0.0], &[3]).unwrap());
        assert!(q.scale() >= f32::MIN_POSITIVE);
        let back = q.dequantize();
        for (x, y) in [absmax, -absmax, 0.0].iter().zip(back.data()) {
            assert!((x - y).abs() <= q.scale() * 0.500001, "{x} vs {y}");
        }
    }

    /// The reference the fused kernel must match bit-for-bit: integer
    /// product, then the eager layers' dequant expression per element.
    fn separate_dequant(
        a: &[i8],
        b: &[i8],
        m: usize,
        k: usize,
        n: usize,
        par: Parallelism,
        ep: &QGemmEpilogue,
    ) -> Vec<f32> {
        let acc = qgemm_nn_with(a, b, m, k, n, par);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut v =
                    acc[i * n + j] as f32 * ep.row_scales[i] + ep.bias.map_or(0.0, |bias| bias[j]);
                if ep.relu {
                    v = v.max(0.0);
                }
                out[i * n + j] = v;
            }
        }
        out
    }

    #[test]
    fn fused_dequant_is_bit_exact_on_every_code_path() {
        // Shapes straddle the small-product threshold and the parallel band
        // split; scales/bias exercise every epilogue combination.
        for &(m, k, n) in &[(3, 5, 7), (40, 41, 43), (70, 160, 96), (1, 700, 2)] {
            let a = pseudo_i8(m * k, (m * 13 + n) as u64);
            let b = pseudo_i8(k * n, (k * 29 + m) as u64);
            let row_scales: Vec<f32> = (0..m).map(|i| 0.001 + i as f32 * 1e-4).collect();
            let bias: Vec<f32> = (0..n).map(|j| (j as f32 - n as f32 / 2.0) * 0.3).collect();
            for par in [Parallelism::Serial, Parallelism::Parallel] {
                for (use_bias, relu) in [(false, false), (true, false), (true, true)] {
                    let ep = QGemmEpilogue {
                        row_scales: &row_scales,
                        bias: if use_bias { Some(&bias) } else { None },
                        relu,
                    };
                    assert_eq!(
                        qgemm_nn_dequant(&a, &b, m, k, n, par, ep),
                        separate_dequant(&a, &b, m, k, n, par, &ep),
                        "mismatch at {m}x{k}x{n} par={par:?} bias={use_bias} relu={relu}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_dequant_relu_clamps_negatives_to_positive_zero() {
        // -3 * 1 * 0.5 = -1.5 -> relu -> 0.0 (positive zero, as `max` gives).
        let out = qgemm_nn_dequant(
            &[-3, 3],
            &[1],
            2,
            1,
            1,
            Parallelism::Serial,
            QGemmEpilogue {
                row_scales: &[0.5, 0.5],
                bias: None,
                relu: true,
            },
        );
        assert_eq!(out, vec![0.0, 1.5]);
        assert!(out[0].is_sign_positive());
    }

    #[test]
    #[should_panic(expected = "row_scales length must be m")]
    fn fused_dequant_rejects_mismatched_scales() {
        let _ = qgemm_nn_dequant(
            &[1, 2],
            &[3, 4],
            2,
            1,
            2,
            Parallelism::Serial,
            QGemmEpilogue {
                row_scales: &[1.0],
                bias: None,
                relu: false,
            },
        );
    }

    #[test]
    #[should_panic(expected = "bias length must be n")]
    fn fused_dequant_rejects_mismatched_bias() {
        let _ = qgemm_nn_dequant(
            &[1, 2],
            &[3, 4],
            2,
            1,
            2,
            Parallelism::Serial,
            QGemmEpilogue {
                row_scales: &[1.0, 1.0],
                bias: Some(&[0.0]),
                relu: false,
            },
        );
    }
}
