//! `im2col`/`col2im` lowering used to express 2-D (de)convolutions as GEMMs.
//!
//! Both transforms touch every batch item independently — item `n` only
//! reads/writes rows `n*out_h*out_w..` of the column matrix and plane
//! `n*C*H*W..` of the image — so large lowerings fan the batch out across
//! cores with [`crate::parallel::par_map`], mirroring the row-band split of
//! the GEMM kernel that consumes their output.

use crate::parallel::par_map;
use crate::Tensor;

/// Below this many f32 elements per transform the batch loop stays serial:
/// thread spawn costs more than the copy for the trainer's tiny lowerings.
const PAR_ELEMENT_THRESHOLD: usize = 1 << 15;

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
///
/// The same geometry object describes both the forward convolution and the
/// transposed convolution that shares its connectivity pattern, which keeps
/// the decoder used by the model inversion attack symmetric to the encoder it
/// inverts.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 1, 1);
/// assert_eq!(g.output_extent(16), 16); // "same" convolution
/// let s = Conv2dGeometry::new(3, 2, 1);
/// assert_eq!(s.output_extent(16), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding added on every border.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an input extent under this geometry.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_extent(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "padded input {padded} smaller than kernel {}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// Input spatial extent reconstructed by the matching transposed
    /// convolution from an output extent.
    pub fn transposed_output_extent(&self, input: usize) -> usize {
        (input - 1) * self.stride + self.kernel - 2 * self.padding
    }
}

/// Unfolds an NCHW tensor into the column matrix used by GEMM-based
/// convolution.
///
/// The result has shape `[batch * out_h * out_w, channels * kernel * kernel]`:
/// each row is the flattened receptive field of one output position.
///
/// # Panics
///
/// Panics if `input` is not rank-4.
pub fn im2col(input: &Tensor, geom: Conv2dGeometry) -> Tensor {
    assert_eq!(input.rank(), 4, "im2col requires an NCHW tensor");
    let [b, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let out_h = geom.output_extent(h);
    let out_w = geom.output_extent(w);
    let k = geom.kernel;
    let cols = c * k * k;
    let rows = b * out_h * out_w;
    let item_rows = out_h * out_w;
    let plane = h * w;

    // One batch item -> its `item_rows x cols` block of the column matrix.
    let lower_item = |n: usize, block: &mut [f32]| {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_idx = oy * out_w + ox;
                let row = &mut block[row_idx * cols..(row_idx + 1) * cols];
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        for kx in 0..k {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            let col_idx = (ch * k + ky) * k + kx;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                row[col_idx] = input.data()
                                    [n * c * plane + ch * plane + iy as usize * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    };

    let mut out = vec![0.0f32; rows * cols];
    if b > 1 && rows * cols >= PAR_ELEMENT_THRESHOLD {
        let indices: Vec<usize> = (0..b).collect();
        let blocks = par_map(&indices, |&n| {
            let mut block = vec![0.0f32; item_rows * cols];
            lower_item(n, &mut block);
            block
        });
        for (chunk, block) in out.chunks_mut(item_rows * cols).zip(blocks) {
            chunk.copy_from_slice(&block);
        }
    } else {
        // Serial: each item writes its disjoint block of `out` in place.
        for (n, chunk) in out.chunks_mut(item_rows * cols).enumerate() {
            lower_item(n, chunk);
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("im2col buffer sized to rows*cols")
}

/// [`im2col`] over raw quantized `i8` data: unfolds an NCHW `i8` buffer into
/// the `[batch * out_h * out_w, channels * kernel * kernel]` column matrix
/// consumed by [`crate::qgemm_nn`].
///
/// Because symmetric quantization maps `0.0` to `0`, zero padding inserted
/// here is exactly the quantization of the zero padding [`im2col`] inserts —
/// lowering commutes with quantization, which the int8 convolution path
/// relies on. Working in `i8` also moves a quarter of the bytes the `f32`
/// lowering moves, which is where much of the int8 speedup on small
/// convolutions comes from.
///
/// # Panics
///
/// Panics if `data.len() != b*c*h*w`.
pub fn im2col_i8(
    data: &[i8],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeometry,
) -> Vec<i8> {
    assert_eq!(data.len(), b * c * h * w, "im2col_i8 buffer/shape mismatch");
    let out_h = geom.output_extent(h);
    let out_w = geom.output_extent(w);
    let k = geom.kernel;
    let cols = c * k * k;
    let rows = b * out_h * out_w;
    let item_rows = out_h * out_w;
    let plane = h * w;

    // Unlike the f32 lowering, the inner loop copies whole in-bounds `kx`
    // runs as slices instead of testing every kernel tap: the valid `kx`
    // window depends only on `ox`, and within it the source pixels are
    // contiguous. On the 3×3 stride-1 lowerings of the quantized serving
    // path this is most of the int8 convolution's speedup over f32.
    let lower_item = |n: usize, block: &mut [i8]| {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_idx = oy * out_w + ox;
                let row = &mut block[row_idx * cols..(row_idx + 1) * cols];
                // kx is valid iff 0 <= ox*stride + kx - padding < w.
                let x0 = ox * geom.stride;
                let kx_lo = geom.padding.saturating_sub(x0).min(k);
                let kx_hi = (w + geom.padding - x0.min(w + geom.padding)).min(k);
                if kx_lo >= kx_hi {
                    continue;
                }
                let ix0 = x0 + kx_lo - geom.padding;
                let run = kx_hi - kx_lo;
                for ky in 0..k {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let src_base = n * c * plane + iy as usize * w + ix0;
                    for ch in 0..c {
                        let col_idx = (ch * k + ky) * k + kx_lo;
                        let src = &data[src_base + ch * plane..src_base + ch * plane + run];
                        row[col_idx..col_idx + run].copy_from_slice(src);
                    }
                }
            }
        }
    };

    let mut out = vec![0i8; rows * cols];
    if b > 1 && rows * cols >= PAR_ELEMENT_THRESHOLD {
        let indices: Vec<usize> = (0..b).collect();
        let blocks = par_map(&indices, |&n| {
            let mut block = vec![0i8; item_rows * cols];
            lower_item(n, &mut block);
            block
        });
        for (chunk, block) in out.chunks_mut(item_rows * cols).zip(blocks) {
            chunk.copy_from_slice(&block);
        }
    } else {
        for (n, chunk) in out.chunks_mut(item_rows * cols).enumerate() {
            lower_item(n, chunk);
        }
    }
    out
}

/// Folds a column matrix back into an NCHW tensor, accumulating overlapping
/// contributions. This is the adjoint of [`im2col`] and is used for the
/// backward pass of convolution and the forward pass of transposed
/// convolution.
///
/// # Panics
///
/// Panics if `cols` does not have shape
/// `[batch * out_h * out_w, channels * kernel * kernel]` for the given
/// geometry and output shape.
pub fn col2im(
    cols: &Tensor,
    batch: usize,
    channels: usize,
    height: usize,
    width: usize,
    geom: Conv2dGeometry,
) -> Tensor {
    let out_h = geom.output_extent(height);
    let out_w = geom.output_extent(width);
    let k = geom.kernel;
    let expected_rows = batch * out_h * out_w;
    let expected_cols = channels * k * k;
    assert_eq!(
        cols.shape(),
        &[expected_rows, expected_cols],
        "col2im input shape mismatch"
    );

    let plane = height * width;
    let item_elems = channels * plane;

    // One batch item -> its accumulated `[C, H, W]` image plane.
    let fold_item = |n: usize, image: &mut [f32]| {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_idx = (n * out_h + oy) * out_w + ox;
                let row = &cols.data()[row_idx * expected_cols..(row_idx + 1) * expected_cols];
                for ch in 0..channels {
                    for ky in 0..k {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        for kx in 0..k {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if iy >= 0 && (iy as usize) < height && ix >= 0 && (ix as usize) < width
                            {
                                let col_idx = (ch * k + ky) * k + kx;
                                image[ch * plane + iy as usize * width + ix as usize] +=
                                    row[col_idx];
                            }
                        }
                    }
                }
            }
        }
    };

    let mut data = vec![0.0f32; batch * item_elems];
    if batch > 1 && batch * item_elems >= PAR_ELEMENT_THRESHOLD {
        let indices: Vec<usize> = (0..batch).collect();
        let images = par_map(&indices, |&n| {
            let mut image = vec![0.0f32; item_elems];
            fold_item(n, &mut image);
            image
        });
        for (chunk, image) in data.chunks_mut(item_elems).zip(images) {
            chunk.copy_from_slice(&image);
        }
    } else {
        // Serial: each item accumulates into its disjoint plane in place.
        for (n, chunk) in data.chunks_mut(item_elems).enumerate() {
            fold_item(n, chunk);
        }
    }
    Tensor::from_vec(data, &[batch, channels, height, width])
        .expect("col2im buffer sized to batch*C*H*W")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_extents() {
        let same = Conv2dGeometry::new(3, 1, 1);
        assert_eq!(same.output_extent(8), 8);
        assert_eq!(same.transposed_output_extent(8), 8);
        let down = Conv2dGeometry::new(2, 2, 0);
        assert_eq!(down.output_extent(8), 4);
        assert_eq!(down.transposed_output_extent(4), 8);
        let valid = Conv2dGeometry::new(3, 1, 0);
        assert_eq!(valid.output_extent(8), 6);
        assert_eq!(valid.transposed_output_extent(6), 8);
    }

    #[test]
    #[should_panic(expected = "kernel size must be positive")]
    fn zero_kernel_rejected() {
        let _ = Conv2dGeometry::new(0, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 and no padding is a pure reshape.
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let cols = im2col(&input, Conv2dGeometry::new(1, 1, 0));
        assert_eq!(cols.shape(), &[4, 2]);
        // Row layout is (pixel, channel).
        assert_eq!(cols.at2(0, 0), input.at4(0, 0, 0, 0));
        assert_eq!(cols.at2(0, 1), input.at4(0, 1, 0, 0));
        assert_eq!(cols.at2(3, 0), input.at4(0, 0, 1, 1));
    }

    #[test]
    fn im2col_extracts_padded_receptive_fields() {
        let input = Tensor::from_fn(&[1, 1, 3, 3], |i| (i + 1) as f32);
        let cols = im2col(&input, Conv2dGeometry::new(3, 1, 1));
        assert_eq!(cols.shape(), &[9, 9]);
        // Top-left output position: the padded corner, so only the lower-right
        // 2x2 block of the kernel window overlaps the image.
        let first_row = &cols.data()[0..9];
        assert_eq!(first_row, &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
        // Centre output position sees the whole image.
        let centre = &cols.data()[4 * 9..5 * 9];
        assert_eq!(centre, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y: the defining property
        // of an adjoint pair, and exactly what the conv backward pass relies on.
        let geom = Conv2dGeometry::new(3, 2, 1);
        let x = Tensor::from_fn(&[2, 3, 5, 5], |i| ((i * 37 % 17) as f32) - 8.0);
        let cols_shape_rows = 2 * geom.output_extent(5) * geom.output_extent(5);
        let cols_shape_cols = 3 * 3 * 3;
        let y = Tensor::from_fn(&[cols_shape_rows, cols_shape_cols], |i| {
            ((i * 13 % 29) as f32) * 0.25 - 3.0
        });
        let lhs = im2col(&x, geom).dot(&y);
        let rhs = x.dot(&col2im(&y, 2, 3, 5, 5, geom));
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // With a 2x2 kernel, stride 1, no padding on a 3x3 image, the centre
        // pixel is covered by all four receptive fields.
        let geom = Conv2dGeometry::new(2, 1, 0);
        let ones = Tensor::ones(&[4, 4]); // 4 output positions x (1*2*2) cols
        let img = col2im(&ones, 1, 1, 3, 3, geom);
        assert_eq!(img.at4(0, 0, 1, 1), 4.0);
        assert_eq!(img.at4(0, 0, 0, 0), 1.0);
        assert_eq!(img.at4(0, 0, 0, 1), 2.0);
    }
}
