//! The dense row-major tensor type.

use crate::json::{JsonError, JsonValue};
use crate::{stride_for, ShapeError};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the only array type used throughout the Ensembler stack. Layout
/// is always contiguous row-major; convolutional data uses the `[batch,
/// channels, height, width]` (NCHW) convention and fully-connected data uses
/// `[batch, features]`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(x.at2(1, 2), 6.0);
/// let y = x.map(|v| v * 2.0);
/// assert_eq!(y.sum(), 42.0);
/// # Ok::<(), ensembler_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the number of elements in `data` does not
    /// match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::new(format!(
                "expected {expected} elements for shape {shape:?}, got {}",
                data.len()
            )));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at every linear index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    // ------------------------------------------------------------------
    // Serialisation
    // ------------------------------------------------------------------

    /// Converts the tensor into its JSON representation
    /// (`{"shape": [...], "data": [...]}`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "shape".to_string(),
                JsonValue::from_usize_slice(&self.shape),
            ),
            ("data".to_string(), JsonValue::from_f32_slice(&self.data)),
        ])
    }

    /// Reconstructs a tensor from the representation produced by
    /// [`Tensor::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if fields are missing, mistyped, or the data
    /// length does not match the shape.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let shape = value.require("shape")?.as_usize_vec()?;
        let data = value.require("data")?.as_f32_vec()?;
        Tensor::from_vec(data, &shape).map_err(|e| JsonError::new(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the shape as a slice of axis extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying buffer in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying buffer mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() requires a single-element tensor, shape is {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Reads the element at `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the indices are out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at2 requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(
            row < r && col < c,
            "index ({row},{col}) out of bounds ({r},{c})"
        );
        self.data[row * c + col]
    }

    /// Writes the element at `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the indices are out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.rank(), 2, "set2 requires a rank-2 tensor");
        let c = self.shape[1];
        assert!(row < self.shape[0] && col < c, "index out of bounds");
        self.data[row * c + col] = value;
    }

    /// Reads the element at `(n, c, h, w)` of a rank-4 (NCHW) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or the indices are out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset4(n, c, h, w)]
    }

    /// Writes the element at `(n, c, h, w)` of a rank-4 (NCHW) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-4 or the indices are out of bounds.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let off = self.offset4(n, c, h, w);
        self.data[off] = value;
    }

    fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        assert_eq!(self.rank(), 4, "NCHW access requires a rank-4 tensor");
        let strides = stride_for(&self.shape);
        assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3],
            "index ({n},{c},{h},{w}) out of bounds {:?}",
            self.shape
        );
        n * strides[0] + c * strides[1] + h * strides[2] + w * strides[3]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if expected != self.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) into {shape:?} ({expected} elements)",
                self.shape,
                self.len()
            )));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Flattens a rank-N tensor into `[batch, features]`, keeping axis 0.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0.
    pub fn flatten_batch(&self) -> Self {
        assert!(self.rank() >= 1, "flatten_batch requires rank >= 1");
        let batch = self.shape[0];
        let features = self.len().checked_div(batch).unwrap_or(0);
        Self {
            shape: vec![batch, features],
            data: self.data.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other);
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Subtracts `other` from `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Adds `alpha * other` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `factor`, producing a new tensor.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|x| x * factor)
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale_assign(&mut self, factor: f32) {
        self.map_inplace(|x| x * factor);
    }

    /// Adds `value` to every element, producing a new tensor.
    pub fn add_scalar(&self, value: f32) -> Self {
        self.map(|x| x + value)
    }

    /// Sets every element to zero in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sets every element to `value` in place.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Clamps every element into `[min, max]`, producing a new tensor.
    pub fn clamp(&self, min: f32, max: f32) -> Self {
        self.map(|x| x.clamp(min, max))
    }

    // ------------------------------------------------------------------
    // Scalar reductions
    // ------------------------------------------------------------------

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Returns the maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal element counts"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Returns `true` if every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_contents() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
        let t = Tensor::from_fn(&[4], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn indexing_rank2_and_rank4() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        assert_eq!(t.at2(1, 0), 3.0);
        let mut t4 = Tensor::zeros(&[2, 2, 2, 2]);
        t4.set4(1, 1, 0, 1, 7.0);
        assert_eq!(t4.at4(1, 1, 0, 1), 7.0);
        assert_eq!(t4.at4(0, 0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank2_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at2(2, 0);
    }

    #[test]
    fn reshape_and_flatten() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let r = t.reshape(&[6, 4]).unwrap();
        assert_eq!(r.shape(), &[6, 4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
        let f = t.flatten_batch();
        assert_eq!(f.shape(), &[2, 12]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn inplace_arithmetic() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[3.0, 6.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
        a.fill(4.0);
        assert_eq!(a.data(), &[4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_with_mismatched_shapes_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, 3.0, -4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert!((t.norm() - (30.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(t.dot(&t), 30.0);
    }

    #[test]
    fn clamp_and_finiteness() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 9.0], &[3]).unwrap();
        assert_eq!(t.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
        assert!(t.is_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(!bad.is_finite());
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = Tensor::zeros(&[0]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(Tensor::default(), t);
    }

    #[test]
    fn json_round_trip() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        let json = t.to_json().render();
        let back = Tensor::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_inconsistent_payloads() {
        let bad = JsonValue::parse(r#"{"shape": [3], "data": [1, 2]}"#).unwrap();
        assert!(Tensor::from_json(&bad).is_err());
        let missing = JsonValue::parse(r#"{"shape": [1]}"#).unwrap();
        assert!(Tensor::from_json(&missing).is_err());
    }
}
