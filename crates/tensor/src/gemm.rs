//! Blocked, parallel GEMM micro-kernels backing the rank-2 matrix products.
//!
//! All three product layouts used by the stack — `A·B`, `Aᵀ·B` and `A·Bᵀ` —
//! funnel into one cache-blocked kernel:
//!
//! * **Packing.** The right-hand operand is repacked once into column panels
//!   of [`NR`] contiguous columns; the left-hand operand is repacked per row
//!   band into row panels of [`MR`] contiguous rows. Packing makes the inner
//!   loop read both operands sequentially regardless of the original layout
//!   (including the transposed variants) and pads ragged edges with zeros so
//!   the micro-kernel never branches.
//! * **Register tiling.** The micro-kernel accumulates a small output tile
//!   in registers across a [`KC`]-deep slice of the shared dimension,
//!   amortising every load of `A` over the tile width and every load of `B`
//!   over the tile height. The tile geometry is picked per host at runtime:
//!   a 6×16 AVX2+FMA kernel on x86-64 machines that report both features, a
//!   portable auto-vectorising [`MR`]`×`[`NR`] kernel everywhere else.
//! * **Cache blocking.** The shared dimension is walked in [`KC`]-sized
//!   blocks so the active `A` and `B` panels stay resident in L1/L2 while an
//!   output tile is produced.
//! * **Row-band parallelism.** Bands of [`MC`] output rows are independent,
//!   so large products fan the bands out across cores with
//!   [`crate::parallel::par_map`]. Products below [`PAR_THRESHOLD`]
//!   multiply-accumulates stay on the calling thread: the trainer's many tiny
//!   multiplies must not pay thread-spawn overhead.
//!
//! Unlike the scalar loops this kernel replaced, no term is ever skipped:
//! `0 × NaN` and `0 × ∞` contributions propagate into the output as IEEE 754
//! dictates, so non-finite values cannot be silently laundered by a GEMM.
//!
//! # Examples
//!
//! ```
//! use ensembler_tensor::gemm::gemm_nn;
//!
//! // [2,2] x [2,2]
//! let c = gemm_nn(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2);
//! assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
//! ```

use crate::parallel::par_map;

/// Rows of the register tile held by the portable micro-kernel. On x86-64
/// hosts with AVX2+FMA a wider 6×16 tile is selected at runtime instead (see
/// the module docs); the packing layout adapts to whichever kernel runs.
pub const MR: usize = 4;
/// Columns of the register tile held by the portable micro-kernel.
pub const NR: usize = 8;
/// Depth of the shared-dimension cache block.
pub const KC: usize = 256;
/// Output rows per parallel band (one unit of work for a worker thread).
pub const MC: usize = 128;

/// One register-tile update: accumulate `tile_rows x cols` over `kc` packed
/// steps into `c` (leading dimension `ldc`). The A panel holds `kc` slivers
/// of `mr` row values; the B panel holds `kc` slivers of `nr` column values.
type MicroKernelFn = fn(
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    c: &mut [f32],
    ldc: usize,
    tile_rows: usize,
    cols: usize,
);

/// The micro-kernel picked for this host, with its register-tile geometry.
#[derive(Clone, Copy)]
struct KernelConfig {
    mr: usize,
    nr: usize,
    micro: MicroKernelFn,
}

/// Picks the widest micro-kernel the host supports. Feature detection is
/// cached by the standard library, so this is cheap to call per GEMM.
fn kernel_config() -> KernelConfig {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelConfig {
                mr: avx2::MR,
                nr: avx2::NR,
                micro: avx2::microkernel,
            };
        }
    }
    KernelConfig {
        mr: MR,
        nr: NR,
        micro: portable_microkernel,
    }
}

/// Below this many right-operand elements (`k·n`) the kernel skips packing
/// entirely and runs a plain register-friendly triple loop.
///
/// Deliberately independent of `m`: row `i` of a product must be bit-exact
/// whether it is computed alone or inside a larger batch, because the
/// inference engine coalesces single-image requests into mini-batches and
/// guarantees coalescing never changes an answer. A threshold involving `m`
/// would route the same row through differently-rounded code paths (the
/// blocked kernel contracts multiply-adds with FMA where available)
/// depending on how many other requests happened to share the batch.
pub const SMALL_THRESHOLD: usize = 32 * 32;

/// At or above this many multiply-accumulates (`m·k·n`) the kernel splits row
/// bands across cores; below it the blocked kernel runs on the calling
/// thread.
pub const PAR_THRESHOLD: usize = 1 << 20;

/// Execution strategy for the blocked GEMM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Choose serial or parallel from the problem size (the default):
    /// products with at least [`PAR_THRESHOLD`] multiply-accumulates use all
    /// cores, smaller ones stay on the calling thread.
    #[default]
    Auto,
    /// Always run on the calling thread.
    Serial,
    /// Always split row bands across worker threads, regardless of size.
    Parallel,
}

/// An element-wise tail applied to each completed output row band while it is
/// still cache-hot, instead of as separate full passes over the output.
///
/// This is the hook the compiled-plan fusion passes in `ensembler-nn` use to
/// fold a layer's bias add and ReLU into the GEMM that feeds them: the fused
/// result is bit-identical to running the GEMM and then the separate
/// per-column bias and mask-multiply ReLU passes, because the epilogue
/// performs exactly the same scalar operations in the same per-element order —
/// only the traversal of memory changes.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::gemm::{gemm_nn_fused, GemmEpilogue, Parallelism};
///
/// let bias = [10.0, 20.0];
/// let ep = GemmEpilogue { bias: Some(&bias), relu: false };
/// let c = gemm_nn_fused(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0], 2, 2, 2,
///                       Parallelism::Auto, ep);
/// assert_eq!(c, vec![29.0, 42.0, 53.0, 70.0]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmEpilogue<'a> {
    /// Per-column bias added to every output row (length must be `n`).
    pub bias: Option<&'a [f32]>,
    /// Apply a mask-multiply ReLU after the bias: `v * (v > 0 ? 1 : 0)`.
    ///
    /// Mask-multiply (rather than `max(0.0)`) mirrors the eager `Relu`
    /// layer's `x * mask` formulation bit-for-bit, including its treatment of
    /// `NaN` (preserved) and negative inputs (mapped to `-0.0`).
    pub relu: bool,
}

impl GemmEpilogue<'_> {
    /// The identity epilogue: no bias, no activation.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if the epilogue performs no work.
    fn is_noop(&self) -> bool {
        self.bias.is_none() && !self.relu
    }
}

/// Applies `ep` to `rows x n` output rows. Element-wise, so applying it per
/// band is indistinguishable from one pass over the full output.
fn apply_epilogue(rows: &mut [f32], n: usize, ep: &GemmEpilogue) {
    if ep.is_noop() || n == 0 {
        return;
    }
    for row in rows.chunks_exact_mut(n) {
        if let Some(bias) = ep.bias {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
        if ep.relu {
            for o in row.iter_mut() {
                *o *= if *o > 0.0 { 1.0 } else { 0.0 };
            }
        }
    }
}

/// Which operands the kernel reads transposed.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `a` is `[m,k]`, `b` is `[k,n]`.
    Nn,
    /// `a` is `[k,m]` (used as `aᵀ`), `b` is `[k,n]`.
    Tn,
    /// `a` is `[m,k]`, `b` is `[n,k]` (used as `bᵀ`).
    Nt,
}

impl Op {
    /// Element `(i, p)` of the logical `[m,k]` left operand.
    #[inline(always)]
    fn a_at(self, a: &[f32], i: usize, p: usize, m: usize, k: usize) -> f32 {
        match self {
            Op::Nn | Op::Nt => a[i * k + p],
            Op::Tn => a[p * m + i],
        }
    }

    /// Element `(p, j)` of the logical `[k,n]` right operand (reference
    /// implementation only; the kernel reads B through its packed panels).
    #[cfg(test)]
    fn b_at(self, b: &[f32], p: usize, j: usize, k: usize, n: usize) -> f32 {
        match self {
            Op::Nn | Op::Tn => b[p * n + j],
            Op::Nt => b[j * k + p],
        }
    }
}

/// `C = A·B` for row-major `a: [m,k]` and `b: [k,n]`, returning row-major
/// `[m,n]`.
///
/// Serial below [`PAR_THRESHOLD`] multiply-accumulates, parallel above; use
/// [`gemm_nn_with`] to force either path.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != k*n`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::gemm::gemm_nn;
///
/// // [1,3] x [3,2] — a row vector against a matrix.
/// let c = gemm_nn(&[1.0, 2.0, 3.0], &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], 1, 3, 2);
/// assert_eq!(c, vec![14.0, 32.0]);
/// ```
pub fn gemm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    gemm_nn_with(a, b, m, k, n, Parallelism::Auto)
}

/// [`gemm_nn`] with an explicit serial/parallel choice.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != k*n`.
pub fn gemm_nn_with(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_nn lhs length must be m*k");
    assert_eq!(b.len(), k * n, "gemm_nn rhs length must be k*n");
    gemm_impl(a, b, m, k, n, Op::Nn, par, GemmEpilogue::none())
}

/// [`gemm_nn`] with a fused [`GemmEpilogue`] applied to each output band
/// while it is cache-hot. Bit-identical to [`gemm_nn_with`] followed by the
/// separate bias/ReLU passes.
///
/// # Panics
///
/// Panics if `a.len() != m*k`, `b.len() != k*n`, or a bias is present with
/// length other than `n`.
pub fn gemm_nn_fused(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
    ep: GemmEpilogue,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_nn lhs length must be m*k");
    assert_eq!(b.len(), k * n, "gemm_nn rhs length must be k*n");
    if let Some(bias) = ep.bias {
        assert_eq!(bias.len(), n, "epilogue bias length must be n");
    }
    gemm_impl(a, b, m, k, n, Op::Nn, par, ep)
}

/// `C = Aᵀ·B` for row-major `a: [k,m]` and `b: [k,n]`, returning row-major
/// `[m,n]` without materialising the transpose.
///
/// # Panics
///
/// Panics if `a.len() != k*m` or `b.len() != k*n`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::gemm::{gemm_nn, gemm_tn};
///
/// // aᵀ·b computed directly matches the explicit [m,k] x [k,n] product.
/// let a_t = [1.0, 3.0, 2.0, 4.0]; // [k=2, m=2] storing aᵀ
/// let a = [1.0, 2.0, 3.0, 4.0]; // [m=2, k=2]
/// let b = [5.0, 6.0, 7.0, 8.0]; // [k=2, n=2]
/// assert_eq!(gemm_tn(&a_t, &b, 2, 2, 2), gemm_nn(&a, &b, 2, 2, 2));
/// ```
pub fn gemm_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    gemm_tn_with(a, b, k, m, n, Parallelism::Auto)
}

/// [`gemm_tn`] with an explicit serial/parallel choice.
///
/// # Panics
///
/// Panics if `a.len() != k*m` or `b.len() != k*n`.
pub fn gemm_tn_with(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    par: Parallelism,
) -> Vec<f32> {
    assert_eq!(a.len(), k * m, "gemm_tn lhs length must be k*m");
    assert_eq!(b.len(), k * n, "gemm_tn rhs length must be k*n");
    gemm_impl(a, b, m, k, n, Op::Tn, par, GemmEpilogue::none())
}

/// `C = A·Bᵀ` for row-major `a: [m,k]` and `b: [n,k]`, returning row-major
/// `[m,n]` without materialising the transpose.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != n*k`.
///
/// # Examples
///
/// ```
/// use ensembler_tensor::gemm::gemm_nt;
///
/// // Each output element is a dot product of one row of a and one row of b.
/// let a = [1.0, 2.0, 3.0, 4.0]; // [m=2, k=2]
/// let b = [1.0, 0.0, 0.0, 1.0]; // [n=2, k=2]: the identity, so c == a
/// assert_eq!(gemm_nt(&a, &b, 2, 2, 2), a.to_vec());
/// ```
pub fn gemm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    gemm_nt_with(a, b, m, k, n, Parallelism::Auto)
}

/// [`gemm_nt`] with an explicit serial/parallel choice.
///
/// # Panics
///
/// Panics if `a.len() != m*k` or `b.len() != n*k`.
pub fn gemm_nt_with(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_nt lhs length must be m*k");
    assert_eq!(b.len(), n * k, "gemm_nt rhs length must be n*k");
    gemm_impl(a, b, m, k, n, Op::Nt, par, GemmEpilogue::none())
}

/// [`gemm_nt`] with a fused [`GemmEpilogue`] applied to each output band
/// while it is cache-hot. Bit-identical to [`gemm_nt_with`] followed by the
/// separate bias/ReLU passes — this is the entry point the compiled
/// convolution and linear stages use to fold their bias add (per GEMM
/// column) and ReLU into the kernel.
///
/// # Panics
///
/// Panics if `a.len() != m*k`, `b.len() != n*k`, or a bias is present with
/// length other than `n`.
pub fn gemm_nt_fused(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    par: Parallelism,
    ep: GemmEpilogue,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "gemm_nt lhs length must be m*k");
    assert_eq!(b.len(), n * k, "gemm_nt rhs length must be n*k");
    if let Some(bias) = ep.bias {
        assert_eq!(bias.len(), n, "epilogue bias length must be n");
    }
    gemm_impl(a, b, m, k, n, Op::Nt, par, ep)
}

#[allow(clippy::too_many_arguments)]
fn gemm_impl(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    op: Op,
    par: Parallelism,
    ep: GemmEpilogue,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        apply_epilogue(&mut out, n, &ep);
        return out;
    }
    if k * n < SMALL_THRESHOLD {
        gemm_small(a, b, m, k, n, op, &mut out);
        apply_epilogue(&mut out, n, &ep);
        return out;
    }
    let cfg = kernel_config();

    // Pack the whole of B once: ceil(n/nr) panels, each k rows of nr
    // contiguous column values (zero-padded on the ragged edge). Every row
    // band reads the same packed copy, so the pack cost is paid once.
    let bp = pack_b(b, k, n, op, cfg.nr);

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let want_parallel = match par {
        Parallelism::Serial => false,
        Parallelism::Parallel => true,
        Parallelism::Auto => workers > 1 && m > cfg.mr && m * k * n >= PAR_THRESHOLD,
    };

    // Band sizing: MC rows normally, but a big product with few rows (the
    // engine's coalesced mini-batches rarely exceed MC) still deserves all
    // cores, so shrink bands to spread m across the workers. Bands stay
    // mr-aligned so every band but the last packs only full row panels, and
    // the split never changes results: each row's arithmetic is independent
    // of which band computes it.
    let band_rows = if want_parallel && m <= MC {
        let per_worker = m.div_ceil(workers.max(2));
        per_worker.div_ceil(cfg.mr) * cfg.mr
    } else {
        MC
    };
    let bands: Vec<(usize, usize)> = (0..m)
        .step_by(band_rows)
        .map(|row0| (row0, band_rows.min(m - row0)))
        .collect();

    if want_parallel && bands.len() > 1 {
        // Each band materialises its rows separately, then they are stitched.
        // The epilogue runs on the band temporary while it is cache-hot; the
        // result is identical to one pass over the stitched output because
        // the epilogue is element-wise.
        let compute = |&(row0, rows): &(usize, usize)| -> Vec<f32> {
            let mut band = vec![0.0f32; rows * n];
            gemm_band(a, &bp, row0, rows, m, k, n, op, cfg, &mut band);
            apply_epilogue(&mut band, n, &ep);
            band
        };
        for ((row0, rows), band) in bands.iter().zip(par_map(&bands, compute)) {
            out[row0 * n..(row0 + rows) * n].copy_from_slice(&band);
        }
    } else {
        // Serial: compute straight into the output, no temporaries. The
        // epilogue follows each band immediately, so its rows are still
        // resident in cache.
        for &(row0, rows) in &bands {
            let band = &mut out[row0 * n..(row0 + rows) * n];
            gemm_band(a, &bp, row0, rows, m, k, n, op, cfg, band);
            apply_epilogue(band, n, &ep);
        }
    }
    out
}

/// Plain triple loop for products too small to amortise packing. Never skips
/// a term, so non-finite values propagate exactly like the blocked path.
fn gemm_small(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, op: Op, out: &mut [f32]) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        match op {
            // Contiguous rhs rows: iterate (p, j) so the inner loop streams.
            Op::Nn | Op::Tn => {
                for p in 0..k {
                    let a_ip = op.a_at(a, i, p, m, k);
                    let b_row = &b[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += a_ip * bv;
                    }
                }
            }
            // Contiguous rhs columns: each output element is a dot product.
            Op::Nt => {
                let a_row = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        }
    }
}

/// Packs the logical `[k,n]` right operand into `nr`-column panels.
///
/// Panel `jp` occupies `bp[jp*k*nr..(jp+1)*k*nr]`; within a panel, row `p`
/// holds columns `jp*nr..jp*nr+nr` contiguously, zero-padded past `n`.
fn pack_b(b: &[f32], k: usize, n: usize, op: Op, nr: usize) -> Vec<f32> {
    let panels = n.div_ceil(nr);
    let mut bp = vec![0.0f32; panels * k * nr];
    for jp in 0..panels {
        let j0 = jp * nr;
        let cols = nr.min(n - j0);
        let panel = &mut bp[jp * k * nr..(jp + 1) * k * nr];
        match op {
            // Row-major source: copy nr-wide slivers of each row.
            Op::Nn | Op::Tn => {
                for p in 0..k {
                    let src = &b[p * n + j0..p * n + j0 + cols];
                    panel[p * nr..p * nr + cols].copy_from_slice(src);
                }
            }
            // Transposed source: column j of the logical B is row j of b.
            Op::Nt => {
                for (c, col) in (j0..j0 + cols).enumerate() {
                    let src = &b[col * k..(col + 1) * k];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * nr + c] = v;
                    }
                }
            }
        }
    }
    bp
}

/// Computes `rows` output rows starting at `row0` into `band` (`rows x n`),
/// blocking the shared dimension by KC and packing A row panels on the fly.
#[allow(clippy::too_many_arguments)]
fn gemm_band(
    a: &[f32],
    bp: &[f32],
    row0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    op: Op,
    cfg: KernelConfig,
    band: &mut [f32],
) {
    let (mr, nr) = (cfg.mr, cfg.nr);
    let row_panels = rows.div_ceil(mr);
    let col_panels = n.div_ceil(nr);
    let mut apack = vec![0.0f32; row_panels * KC * mr];

    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        // Pack this band's A block: row panel `ir` holds rows
        // row0+ir*mr..+mr for shared indices pc..pc+kc, zero-padded past the
        // band edge.
        for ir in 0..row_panels {
            let panel = &mut apack[ir * kc * mr..(ir + 1) * kc * mr];
            for p in 0..kc {
                for r in 0..mr {
                    let i = row0 + ir * mr + r;
                    panel[p * mr + r] = if i < row0 + rows {
                        op.a_at(a, i, pc + p, m, k)
                    } else {
                        0.0
                    };
                }
            }
        }
        for jp in 0..col_panels {
            let bpanel = &bp[jp * k * nr + pc * nr..jp * k * nr + (pc + kc) * nr];
            let j0 = jp * nr;
            let cols = nr.min(n - j0);
            for ir in 0..row_panels {
                let apanel = &apack[ir * kc * mr..(ir + 1) * kc * mr];
                let r0 = ir * mr;
                let tile_rows = mr.min(rows - r0);
                (cfg.micro)(
                    apanel,
                    bpanel,
                    kc,
                    &mut band[r0 * n + j0..],
                    n,
                    tile_rows,
                    cols,
                );
            }
        }
        pc += kc;
    }
}

/// Accumulates an [`MR`]`x`[`NR`] register tile over `kc` shared-dimension
/// steps and adds the `tile_rows x cols` valid region into `c` (leading dim
/// `ldc`). Pure safe Rust; the fixed-size slivers below auto-vectorise on
/// any target.
fn portable_microkernel(
    apanel: &[f32],
    bpanel: &[f32],
    kc: usize,
    c: &mut [f32],
    ldc: usize,
    tile_rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av: &[f32; MR] = apanel[p * MR..p * MR + MR].try_into().expect("MR sliver");
        let bv: &[f32; NR] = bpanel[p * NR..p * NR + NR].try_into().expect("NR sliver");
        for r in 0..MR {
            let ar = av[r];
            for (slot, &bval) in acc[r].iter_mut().zip(bv) {
                *slot += ar * bval;
            }
        }
    }
    for r in 0..tile_rows {
        let crow = &mut c[r * ldc..r * ldc + cols];
        for (o, &v) in crow.iter_mut().zip(&acc[r][..cols]) {
            *o += v;
        }
    }
}

/// AVX2+FMA micro-kernel: a 6×16 register tile (12 `ymm` accumulators, two
/// per row) fed by broadcast A values, selected at runtime on x86-64 hosts
/// that report both features.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// Register-tile rows of the AVX2 kernel.
    pub(super) const MR: usize = 6;
    /// Register-tile columns of the AVX2 kernel (two 8-lane `ymm` vectors).
    pub(super) const NR: usize = 16;

    /// Safe entry point matching [`super::MicroKernelFn`].
    ///
    /// Only reachable through [`super::kernel_config`], which verifies AVX2
    /// and FMA availability before handing out this function pointer, so the
    /// `target_feature` call below is sound.
    pub(super) fn microkernel(
        apanel: &[f32],
        bpanel: &[f32],
        kc: usize,
        c: &mut [f32],
        ldc: usize,
        tile_rows: usize,
        cols: usize,
    ) {
        debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
        unsafe { microkernel_impl(apanel, bpanel, kc, c, ldc, tile_rows, cols) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn microkernel_impl(
        apanel: &[f32],
        bpanel: &[f32],
        kc: usize,
        c: &mut [f32],
        ldc: usize,
        tile_rows: usize,
        cols: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let ap = apanel.as_ptr();
        let bpp = bpanel.as_ptr();
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bpp.add(p * NR));
            let b1 = _mm256_loadu_ps(bpp.add(p * NR + 8));
            for (r, row_acc) in acc.iter_mut().enumerate() {
                let ar = _mm256_set1_ps(*ap.add(p * MR + r));
                row_acc[0] = _mm256_fmadd_ps(ar, b0, row_acc[0]);
                row_acc[1] = _mm256_fmadd_ps(ar, b1, row_acc[1]);
            }
        }
        if tile_rows == MR && cols == NR {
            // Full tile: vector read-modify-write straight into C.
            for (r, row_acc) in acc.iter().enumerate() {
                let crow = c.as_mut_ptr().add(r * ldc);
                _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), row_acc[0]));
                _mm256_storeu_ps(
                    crow.add(8),
                    _mm256_add_ps(_mm256_loadu_ps(crow.add(8)), row_acc[1]),
                );
            }
        } else {
            // Ragged edge: spill the tile and add the valid region scalar-wise.
            let mut spill = [0.0f32; MR * NR];
            for (r, row_acc) in acc.iter().enumerate() {
                _mm256_storeu_ps(spill.as_mut_ptr().add(r * NR), row_acc[0]);
                _mm256_storeu_ps(spill.as_mut_ptr().add(r * NR + 8), row_acc[1]);
            }
            for r in 0..tile_rows {
                let crow = &mut c[r * ldc..r * ldc + cols];
                for (o, &v) in crow.iter_mut().zip(&spill[r * NR..r * NR + cols]) {
                    *o += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook reference product, deliberately unblocked and skip-free.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, op: Op) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += op.a_at(a, i, p, m, k) * op.b_at(b, p, j, k, n);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    fn assert_close(lhs: &[f32], rhs: &[f32], tol: f32) {
        assert_eq!(lhs.len(), rhs.len());
        for (i, (x, y)) in lhs.iter().zip(rhs).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_above_small_threshold() {
        // 41*43 > SMALL_THRESHOLD, with ragged MR/NR edges.
        let (m, k, n) = (40, 41, 43);
        let a = pseudo(m * k, 1);
        let b = pseudo(k * n, 2);
        let got = gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial);
        assert_close(&got, &reference(&a, &b, m, k, n, Op::Nn), 1e-4);
    }

    #[test]
    fn parallel_path_matches_serial_path() {
        let (m, k, n) = (70, 33, 37); // k*n above SMALL_THRESHOLD: blocked path
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let serial = gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial);
        let parallel = gemm_nn_with(&a, &b, m, k, n, Parallelism::Parallel);
        assert_eq!(serial, parallel, "band split must not change results");
    }

    #[test]
    fn kc_blocking_accumulates_across_blocks() {
        // k > KC forces at least two KC blocks accumulating into one tile.
        let (m, k, n) = (5, KC + 7, 9);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let got = gemm_nn_with(&a, &b, m, k, n, Parallelism::Serial);
        assert_close(&got, &reference(&a, &b, m, k, n, Op::Nn), 1e-3);
    }

    #[test]
    fn transposed_variants_match_reference() {
        let (m, k, n) = (37, 33, 41); // k*n above SMALL_THRESHOLD: blocked path
        let at = pseudo(k * m, 7);
        let b = pseudo(k * n, 8);
        let got = gemm_tn_with(&at, &b, k, m, n, Parallelism::Parallel);
        assert_close(&got, &reference(&at, &b, m, k, n, Op::Tn), 1e-4);

        let a = pseudo(m * k, 9);
        let bt = pseudo(n * k, 10);
        let got = gemm_nt_with(&a, &bt, m, k, n, Parallelism::Parallel);
        assert_close(&got, &reference(&a, &bt, m, k, n, Op::Nt), 1e-4);
    }

    #[test]
    fn zero_times_nan_propagates() {
        // Regression for the old `if a_ip == 0.0 { continue; }` shortcut:
        // a zero lhs row must still pick up NaN/inf from the rhs.
        let a = vec![0.0f32; 4]; // [2,2] of zeros
        let b = vec![f32::NAN, f32::INFINITY, f32::INFINITY, f32::NAN];
        for v in gemm_nn(&a, &b, 2, 2, 2) {
            assert!(v.is_nan(), "0 x NaN / 0 x inf must yield NaN, got {v}");
        }
    }

    #[test]
    fn empty_dimensions_yield_zero_filled_output() {
        assert_eq!(gemm_nn(&[], &[], 0, 0, 0), Vec::<f32>::new());
        assert_eq!(gemm_nn(&[], &[], 2, 0, 3), vec![0.0; 6]);
    }

    /// The unfused equivalent of the epilogue: bias pass, then mask-multiply
    /// ReLU pass, exactly as the eager layer stack performs them.
    fn separate_passes(mut out: Vec<f32>, n: usize, bias: Option<&[f32]>, relu: bool) -> Vec<f32> {
        for row in out.chunks_exact_mut(n) {
            if let Some(bias) = bias {
                for (o, &bv) in row.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }
        if relu {
            for o in out.iter_mut() {
                let mask = if *o > 0.0 { 1.0 } else { 0.0 };
                *o *= mask;
            }
        }
        out
    }

    #[test]
    fn fused_epilogue_is_bit_exact_on_every_code_path() {
        // Sizes straddling SMALL_THRESHOLD and the parallel band split; the
        // fused result must be bit-identical to GEMM + separate passes on all
        // of them, for both layouts the fused entry points expose.
        for &(m, k, n) in &[(3usize, 5usize, 7usize), (40, 41, 43), (70, 160, 96)] {
            let a = pseudo(m * k, 11);
            let b = pseudo(k * n, 12);
            let bt = pseudo(n * k, 13);
            let bias = pseudo(n, 14);
            for par in [Parallelism::Serial, Parallelism::Parallel] {
                for (biased, relu) in [(false, true), (true, false), (true, true)] {
                    let ep = GemmEpilogue {
                        bias: biased.then_some(bias.as_slice()),
                        relu,
                    };
                    let fused = gemm_nn_fused(&a, &b, m, k, n, par, ep);
                    let eager =
                        separate_passes(gemm_nn_with(&a, &b, m, k, n, par), n, ep.bias, relu);
                    assert_eq!(
                        fused, eager,
                        "nn {m}x{k}x{n} {par:?} bias={biased} relu={relu}"
                    );

                    let fused = gemm_nt_fused(&a, &bt, m, k, n, par, ep);
                    let eager =
                        separate_passes(gemm_nt_with(&a, &bt, m, k, n, par), n, ep.bias, relu);
                    assert_eq!(
                        fused, eager,
                        "nt {m}x{k}x{n} {par:?} bias={biased} relu={relu}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_relu_mirrors_the_mask_multiply_semantics() {
        // The eager Relu layer computes `x * (x > 0 ? 1 : 0)`: negatives
        // become -0.0 and NaN survives. The fused epilogue must match, or
        // fused-vs-eager bit-exactness breaks on those payloads.
        let a = [1.0f32, 0.0, -1.0, 0.0]; // [2,2]
        let b = [-3.0f32, f32::NAN, 0.0, 0.0]; // [2,2]
        let ep = GemmEpilogue {
            bias: None,
            relu: true,
        };
        let fused = gemm_nn_fused(&a, &b, 2, 2, 2, Parallelism::Serial, ep);
        // Row 0: [-3, NaN] -> [-0.0, NaN]; row 1: [3, NaN] -> [3, NaN].
        assert!(fused[0] == 0.0 && fused[0].is_sign_negative(), "{fused:?}");
        assert!(fused[1].is_nan());
        assert_eq!(fused[2], 3.0);
        assert!(fused[3].is_nan());
    }

    #[test]
    #[should_panic(expected = "epilogue bias length must be n")]
    fn fused_rejects_mismatched_bias() {
        let bias = [1.0f32; 3];
        let _ = gemm_nt_fused(
            &[1.0; 4],
            &[1.0; 4],
            2,
            2,
            2,
            Parallelism::Serial,
            GemmEpilogue {
                bias: Some(&bias),
                relu: false,
            },
        );
    }
}
