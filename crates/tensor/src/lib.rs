//! Dense NCHW `f32` tensor kernel for the Ensembler reproduction.
//!
//! This crate is the numerical substrate that replaces PyTorch in the original
//! paper. It provides a single dense, row-major [`Tensor`] type together with
//! the operations needed by the neural-network layers in `ensembler-nn`:
//! element-wise arithmetic, matrix multiplication, reductions, and the
//! `im2col`/`col2im` transformations used to express convolutions as GEMMs.
//!
//! Most operations are implemented as straightforward loops over contiguous
//! buffers so the gradient checks in `ensembler-nn` validate against an
//! easily auditable reference. The exception is the hot path: the rank-2
//! matrix products are backed by the blocked, parallel kernel in [`gemm`],
//! and `im2col`/`col2im` parallelise over the batch dimension (see
//! `docs/PERFORMANCE.md` at the repository root for the design and measured
//! numbers).
//!
//! # Examples
//!
//! ```
//! use ensembler_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::ones(&[2, 2]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[3.0, 3.0, 7.0, 7.0]);
//! # Ok::<(), ensembler_tensor::ShapeError>(())
//! ```

mod conv;
mod error;
pub mod gemm;
mod init;
pub mod json;
mod ops;
pub mod parallel;
pub mod quant;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, im2col_i8, Conv2dGeometry};
pub use error::ShapeError;
pub use init::{Init, Rng};
pub use json::{JsonError, JsonValue};
pub use parallel::par_map;
pub use quant::{qgemm_nn, qgemm_nn_dequant, QGemmEpilogue, QTensor, QTensorBatch};
pub use shape::{broadcast_compatible, stride_for, Shape};
pub use tensor::Tensor;
