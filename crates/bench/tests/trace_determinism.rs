//! Determinism properties of the trace subsystem (satellite of the
//! scenario-diversity PR): the same `(shape, seed)` must synthesize the
//! byte-identical trace, render∘parse must be the identity, the committed
//! example trace must match its generator spec, and two replays of the same
//! trace against the same deterministic deployment must produce the
//! identical arrival schedule and outcome classification.

use ensembler_bench::trace::{
    demo_bursty_trace, run_trace_replay, synthesize, RequestKind, Trace, TraceShape,
};
use ensembler_serve::{ErrorCode, ServeError, WireError};
use proptest::prelude::*;
use std::sync::Arc;

/// A small shape catalogue the properties quantify over.
fn shape_for(index: usize) -> TraceShape {
    match index % 3 {
        0 => TraceShape::Steady {
            qps: 80.0,
            duration_s: 1.5,
        },
        1 => TraceShape::Bursty {
            base_qps: 15.0,
            burst_qps: 90.0,
            period_s: 0.5,
            burst_fraction: 0.3,
            duration_s: 2.0,
        },
        _ => TraceShape::Diurnal {
            low_qps: 10.0,
            peak_qps: 70.0,
            period_s: 1.0,
            duration_s: 2.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_is_a_pure_function_of_shape_and_seed(
        seed in any::<u64>(),
        shape_index in 0usize..3,
    ) {
        let shape = shape_for(shape_index);
        let a = synthesize(&shape, seed).expect("valid shape");
        let b = synthesize(&shape, seed).expect("valid shape");
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(a.schedule(), b.schedule());
    }

    #[test]
    fn render_then_parse_is_the_identity(
        seed in any::<u64>(),
        shape_index in 0usize..3,
    ) {
        let trace = synthesize(&shape_for(shape_index), seed).expect("valid shape");
        let reparsed = Trace::parse(&trace.render()).expect("canonical form must parse");
        prop_assert_eq!(&trace, &reparsed);
        // And rendering the reparse changes nothing either.
        prop_assert_eq!(trace.render(), reparsed.render());
    }
}

#[test]
fn different_seeds_diverge() {
    let shape = shape_for(1);
    let a = synthesize(&shape, 1).unwrap();
    let b = synthesize(&shape, 2).unwrap();
    assert_ne!(
        a.schedule(),
        b.schedule(),
        "distinct seeds must give distinct arrival schedules"
    );
}

#[test]
fn committed_demo_trace_matches_its_generator_spec() {
    let committed_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("traces")
        .join("bursty_demo.trace");
    let committed = std::fs::read_to_string(&committed_path)
        .expect("crates/bench/traces/bursty_demo.trace is committed");
    assert_eq!(
        committed,
        demo_bursty_trace().render(),
        "the committed trace drifted from demo_bursty_trace(); regenerate it with \
         `cargo run -p ensembler-bench --bin trace_gen -- --out crates/bench/traces/bursty_demo.trace`"
    );
    // And it parses back to the generator's trace exactly.
    let parsed = Trace::load(&committed_path).expect("committed trace parses");
    assert_eq!(parsed, demo_bursty_trace());
}

/// Replaying the same trace twice against the same deterministic deployment
/// must produce the identical schedule and outcome classification: `predict`
/// frames always succeed, `outputs` frames are always shed. (Per-request
/// timing is the machine's and is deliberately excluded.)
#[test]
fn replay_outcomes_are_deterministic_across_runs() {
    let trace = synthesize(
        &TraceShape::Steady {
            qps: 150.0,
            duration_s: 0.4,
        },
        42,
    )
    .expect("valid shape");
    assert_eq!(trace.schedule(), trace.schedule());

    let run = || {
        run_trace_replay(&trace, |kind| match kind {
            RequestKind::Predict => Arc::new(|| Ok(())),
            RequestKind::Outputs => Arc::new(|| {
                Err(ServeError::Remote(WireError {
                    code: ErrorCode::Overloaded,
                    message: "deterministic shed".to_string(),
                }))
            }),
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first.outcome_signature(), second.outcome_signature());
    assert_eq!(first.entries, trace.len());
    assert_eq!(
        first.ok + first.rejected + first.failed,
        trace.len(),
        "every arrival must be classified exactly once"
    );
    assert_eq!(first.failed, 0);
}
