//! Error-path coverage for the trace format (satellite of the
//! scenario-diversity PR), in the same spirit as the artifact codec's
//! fault-injection suite: every malformed input must map to a typed
//! [`TraceError`], never a panic — malformed lines, non-monotonic
//! timestamps, absurd sustained rates, oversized traces, oversized spans and
//! empty traces all have their own variant, and random corruption of a valid
//! trace parses or fails cleanly.

use ensembler_bench::trace::{
    synthesize, RequestKind, Trace, TraceEntry, TraceError, TraceShape, MAX_TRACE_ENTRIES,
};
use ensembler_tensor::Rng;
use proptest::prelude::*;

#[test]
fn empty_inputs_are_typed_empty() {
    assert_eq!(Trace::parse(""), Err(TraceError::Empty));
    assert_eq!(Trace::parse("\n\n\n"), Err(TraceError::Empty));
    assert_eq!(
        Trace::parse("# just a comment\n  # another\n"),
        Err(TraceError::Empty)
    );
    assert_eq!(Trace::from_entries(Vec::new()), Err(TraceError::Empty));
}

#[test]
fn malformed_lines_carry_their_line_number() {
    let cases: &[(&str, usize)] = &[
        ("abc outputs", 1),                // non-numeric offset
        ("# ok\n1.0", 2),                  // missing kind
        ("1.0 outputs extra", 1),          // trailing token
        ("NaN outputs", 1),                // non-finite offset
        ("inf outputs", 1),                // non-finite offset
        ("-5 outputs", 1),                 // negative offset
        ("1.0 fetch", 1),                  // unknown kind
        ("0.0 outputs\n\n2.0 OUTPUTS", 3), // kinds are case-sensitive
    ];
    for (text, expected_line) in cases {
        match Trace::parse(text) {
            Err(TraceError::Malformed { line, reason }) => {
                assert_eq!(
                    line, *expected_line,
                    "wrong line for {text:?} (reason {reason:?})"
                );
                assert!(!reason.is_empty());
            }
            other => panic!("{text:?} must be Malformed, got {other:?}"),
        }
    }
}

#[test]
fn backwards_timestamps_are_typed_non_monotonic() {
    match Trace::parse("5.0 outputs\n2.0 outputs") {
        Err(TraceError::NonMonotonic {
            line,
            previous_ms,
            offset_ms,
        }) => {
            assert_eq!(line, 2);
            assert_eq!(previous_ms, 5.0);
            assert_eq!(offset_ms, 2.0);
        }
        other => panic!("expected NonMonotonic, got {other:?}"),
    }
    // Equal offsets are a legal burst, not a monotonicity violation.
    assert!(Trace::parse("1.0 outputs\n1.0 outputs").is_ok());
}

#[test]
fn sustained_absurd_rates_are_rejected() {
    // 1100 arrivals all at t=0: any 1000-wide window spans 0 ms, far below
    // the minimum span for the 100k-QPS sustained-rate cap.
    let text = "0.000 outputs\n".repeat(1_100);
    match Trace::parse(&text) {
        Err(TraceError::AbsurdRate {
            line,
            window_span_ms,
            min_span_ms,
        }) => {
            assert_eq!(
                line, 1_001,
                "the error points at the end of the first bad window"
            );
            assert_eq!(window_span_ms, 0.0);
            assert!(min_span_ms > 0.0);
        }
        other => panic!("expected AbsurdRate, got {other:?}"),
    }
    // A short burst (under one window) at the same instant stays legal.
    assert!(Trace::parse(&"0.000 outputs\n".repeat(900)).is_ok());
}

#[test]
fn oversized_traces_and_spans_are_rejected() {
    // Entry cap, through the validating constructor: spacing of 1 ms keeps
    // the sustained rate legal so only the length trips.
    let entries: Vec<TraceEntry> = (0..=MAX_TRACE_ENTRIES as u64)
        .map(|i| TraceEntry {
            offset_us: i * 1_000,
            kind: RequestKind::Outputs,
        })
        .collect();
    match Trace::from_entries(entries) {
        Err(TraceError::TooLong { entries, max }) => {
            assert_eq!(max, MAX_TRACE_ENTRIES);
            assert!(entries > max);
        }
        other => panic!("expected TooLong, got {other:?}"),
    }

    // Entry cap, through the parser (it must stop counting, not allocate
    // without bound).
    let mut text = String::new();
    for i in 0..=MAX_TRACE_ENTRIES {
        text.push_str(&format!("{i}.0 outputs\n"));
    }
    assert!(matches!(
        Trace::parse(&text),
        Err(TraceError::TooLong { .. })
    ));

    // Span cap: one arrival past 24 h.
    match Trace::parse("90000000 outputs") {
        Err(TraceError::SpanTooLong { offset_ms, max_ms }) => {
            assert_eq!(offset_ms, 90_000_000.0);
            assert_eq!(max_ms, 86_400_000.0);
        }
        other => panic!("expected SpanTooLong, got {other:?}"),
    }
}

#[test]
fn missing_files_are_typed_io_errors() {
    match Trace::load(std::path::Path::new("/nonexistent/definitely.trace")) {
        Err(TraceError::Io(reason)) => assert!(reason.contains("definitely.trace")),
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn invalid_shapes_are_typed_not_panics() {
    let bad_shapes = [
        TraceShape::Steady {
            qps: 0.0,
            duration_s: 1.0,
        },
        TraceShape::Steady {
            qps: f64::NAN,
            duration_s: 1.0,
        },
        TraceShape::Steady {
            qps: 10.0,
            duration_s: -1.0,
        },
        TraceShape::Bursty {
            base_qps: 10.0,
            burst_qps: 50.0,
            period_s: 1.0,
            burst_fraction: 1.0, // must be strictly inside (0, 1)
            duration_s: 1.0,
        },
        TraceShape::Diurnal {
            low_qps: 10.0,
            peak_qps: f64::INFINITY,
            period_s: 1.0,
            duration_s: 1.0,
        },
    ];
    for shape in bad_shapes {
        assert!(
            matches!(synthesize(&shape, 0), Err(TraceError::Malformed { .. })),
            "shape {shape:?} must be rejected with a typed error"
        );
    }
    // A shape whose legal rate overflows the entry cap is typed too.
    assert!(matches!(
        synthesize(
            &TraceShape::Steady {
                qps: 90_000.0,
                duration_s: 3_600.0,
            },
            0
        ),
        Err(TraceError::TooLong { .. })
    ));
}

/// Builds a random blob of trace-adjacent text from a seed: tokens drawn
/// from digits, kinds, junk words, comments, whitespace and newlines.
fn random_trace_text(seed: u64) -> String {
    let mut rng = Rng::seed_from(seed);
    let vocabulary = [
        "0",
        "1.5",
        "12.500",
        "-3",
        "1e300",
        "NaN",
        "inf",
        "outputs",
        "predict",
        "fetch",
        "#",
        "# comment",
        "",
        "  ",
        "9999999999",
        "0.0005",
    ];
    let mut text = String::new();
    let lines = rng.below(30);
    for _ in 0..lines {
        let tokens = rng.below(4);
        for t in 0..tokens {
            if t > 0 {
                text.push(' ');
            }
            text.push_str(vocabulary[rng.below(vocabulary.len())]);
        }
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random trace-adjacent text parses or fails with a typed error —
    /// never a panic, and a success must round-trip through render.
    #[test]
    fn random_text_never_panics_the_parser(seed in any::<u64>()) {
        match Trace::parse(&random_trace_text(seed)) {
            Ok(trace) => {
                let reparsed = Trace::parse(&trace.render()).expect("canonical form parses");
                prop_assert_eq!(trace, reparsed);
            }
            Err(e) => {
                // Every error renders a human-readable message.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Corrupting one byte of a valid trace parses or fails cleanly.
    #[test]
    fn single_byte_corruption_never_panics(seed in any::<u64>(), pos in any::<usize>(), byte in 0u8..=255) {
        let valid = synthesize(
            &TraceShape::Steady { qps: 60.0, duration_s: 1.0 },
            seed,
        )
        .expect("valid shape");
        let mut bytes = valid.render().into_bytes();
        let index = pos % bytes.len();
        bytes[index] = byte;
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Trace::parse(&text); // must not panic either way
        }
    }
}
