//! Shared experiment harness used by the table-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table of the Ensembler paper:
//!
//! * `table1` — defence quality of Single vs Ensembler across the three
//!   datasets (Table I).
//! * `table2` — all defence mechanisms on the CIFAR-10 stand-in (Table II).
//! * `table3` — latency of Standard CI vs Ensembler vs STAMP (Table III).
//! * `ablation_lambda` — sensitivity to the regularization strength λ.
//! * `ablation_ensemble` — sensitivity to the ensemble size N and selection
//!   size P.
//!
//! All binaries accept the `ENSEMBLER_SCALE` environment variable:
//! `quick` (default) runs a scaled-down configuration that finishes in a few
//! minutes on a laptop CPU; `full` runs the larger configuration described in
//! `DESIGN.md`.
//!
//! The [`load`] module is the open-loop load-generation harness behind the
//! `load_gen` binary and the `load` section of `BENCH_PERF.json`; [`stream`]
//! adds stateful streaming sessions (per-session cadence, jitter and stall
//! accounting) and [`trace`] a committed text trace format with a
//! deterministic synthesizer and an open-loop replayer, both feeding the
//! `scenarios` section.

pub mod load;
pub mod stream;
pub mod trace;

use ensembler::{
    Defense, DefenseKind, EnsemblerError, EnsemblerTrainer, EvalConfig, SinglePipeline, TrainConfig,
};
use ensembler_attack::{
    attack_adaptive, attack_all_single_nets, attack_single_pipeline, AttackConfig, AttackOutcome,
};
use ensembler_data::{SyntheticDataset, SyntheticSpec};
use ensembler_nn::models::ResNetConfig;
use ensembler_tensor::{JsonValue, Tensor};

/// How much compute an experiment run is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Scaled-down run (small ensembles, few epochs) for CI and smoke runs.
    Quick,
    /// The full configuration described in DESIGN.md.
    Full,
}

impl ExperimentScale {
    /// Reads the scale from the `ENSEMBLER_SCALE` environment variable
    /// (`quick` by default, `full` to enable the larger run).
    pub fn from_env() -> Self {
        match std::env::var("ENSEMBLER_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => ExperimentScale::Full,
            _ => ExperimentScale::Quick,
        }
    }

    /// Ensemble size N used for the defence-quality tables.
    pub fn ensemble_size(self) -> usize {
        match self {
            ExperimentScale::Quick => 4,
            ExperimentScale::Full => 10,
        }
    }

    /// Training hyper-parameters for this scale.
    pub fn train_config(self) -> TrainConfig {
        match self {
            ExperimentScale::Quick => TrainConfig {
                epochs_stage1: 4,
                epochs_stage3: 5,
                batch_size: 16,
                learning_rate: 0.05,
                lambda: 1.0,
                sigma: 0.1,
                seed: 2024,
            },
            ExperimentScale::Full => TrainConfig::paper_like(),
        }
    }

    /// Attack hyper-parameters for this scale.
    pub fn attack_config(self) -> AttackConfig {
        match self {
            ExperimentScale::Quick => AttackConfig {
                shadow_epochs: 4,
                decoder_epochs: 5,
                batch_size: 16,
                learning_rate: 0.05,
                seed: 7,
            },
            ExperimentScale::Full => AttackConfig::paper_like(),
        }
    }

    /// Per-class sample counts for the synthetic datasets.
    pub fn samples_per_class(self) -> (usize, usize) {
        match self {
            ExperimentScale::Quick => (16, 6),
            ExperimentScale::Full => (40, 10),
        }
    }

    /// Number of private test images each attack tries to reconstruct.
    pub fn attack_targets(self) -> usize {
        match self {
            ExperimentScale::Quick => 8,
            ExperimentScale::Full => 32,
        }
    }
}

/// One of the paper's three evaluation datasets together with its backbone
/// configuration and selection size P.
#[derive(Debug, Clone)]
pub struct DatasetCase {
    /// Dataset name used in the printed tables.
    pub name: &'static str,
    /// Synthetic stand-in specification.
    pub spec: SyntheticSpec,
    /// Backbone configuration (split location, pooling, classes).
    pub config: ResNetConfig,
    /// Number of server networks the selector activates (P).
    pub selected: usize,
}

impl DatasetCase {
    /// The three dataset cases of Table I with the paper's P = {4, 3, 5}
    /// (clamped to the ensemble size at quick scale).
    pub fn paper_cases(scale: ExperimentScale) -> Vec<DatasetCase> {
        let (train_pc, test_pc) = scale.samples_per_class();
        let clamp = |p: usize| p.min(scale.ensemble_size());
        vec![
            DatasetCase {
                name: "CIFAR-10 (synthetic)",
                spec: SyntheticSpec::cifar10_like().with_samples(train_pc, test_pc),
                config: ResNetConfig::cifar10_like(),
                selected: clamp(4),
            },
            DatasetCase {
                name: "CIFAR-100 (synthetic)",
                spec: SyntheticSpec::cifar100_like().with_samples(train_pc, test_pc),
                config: ResNetConfig::cifar100_like(),
                selected: clamp(3),
            },
            DatasetCase {
                name: "CelebA-HQ (synthetic)",
                spec: SyntheticSpec::celeba_hq_like().with_samples(train_pc, test_pc),
                config: ResNetConfig::celeba_like(),
                selected: clamp(5),
            },
        ]
    }

    /// Only the CIFAR-10 case (used by Table II and the ablations).
    pub fn cifar10(scale: ExperimentScale) -> DatasetCase {
        DatasetCase::paper_cases(scale).remove(0)
    }

    /// Generates the synthetic dataset for this case.
    pub fn generate(&self, seed: u64) -> SyntheticDataset {
        self.spec.generate(seed)
    }
}

/// One row of a defence-quality table (Tables I and II).
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// Defence name as printed in the paper.
    pub name: String,
    /// Change in accuracy relative to the unprotected model, in percent
    /// (positive = the defence costs accuracy).
    pub delta_accuracy_pct: f32,
    /// Mean SSIM of the attacker's reconstructions (lower = better defence).
    pub ssim: f32,
    /// Mean PSNR of the attacker's reconstructions (lower = better defence).
    pub psnr: f32,
}

impl DefenseRow {
    fn new(name: impl Into<String>, delta_accuracy_pct: f32, outcome: &AttackOutcome) -> Self {
        Self {
            name: name.into(),
            delta_accuracy_pct,
            ssim: outcome.ssim,
            psnr: outcome.psnr,
        }
    }

    /// JSON representation of the row.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".to_string(), JsonValue::String(self.name.clone())),
            (
                "delta_accuracy_pct".to_string(),
                JsonValue::Number(self.delta_accuracy_pct as f64),
            ),
            ("ssim".to_string(), JsonValue::Number(self.ssim as f64)),
            ("psnr".to_string(), JsonValue::Number(self.psnr as f64)),
        ])
    }
}

/// Result of evaluating the Single baseline and Ensembler on one dataset.
#[derive(Debug, Clone)]
pub struct DefenseQualityResult {
    /// Dataset name.
    pub dataset: String,
    /// Accuracy of the unprotected reference model.
    pub baseline_accuracy: f32,
    /// Table rows in the paper's order.
    pub rows: Vec<DefenseRow>,
}

impl DefenseQualityResult {
    /// JSON representation of the whole table.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "dataset".to_string(),
                JsonValue::String(self.dataset.clone()),
            ),
            (
                "baseline_accuracy".to_string(),
                JsonValue::Number(self.baseline_accuracy as f64),
            ),
            (
                "rows".to_string(),
                JsonValue::Array(self.rows.iter().map(DefenseRow::to_json).collect()),
            ),
        ])
    }
}

/// Runs the Table-I protocol for one dataset case: trains the unprotected
/// reference, the Single baseline and Ensembler, attacks each of them and
/// reports ΔAcc / SSIM / PSNR rows.
///
/// # Errors
///
/// Propagates training, evaluation and attack failures.
pub fn run_defense_quality(
    case: &DatasetCase,
    scale: ExperimentScale,
) -> Result<DefenseQualityResult, EnsemblerError> {
    let data = case.generate(11);
    let train_cfg = scale.train_config();
    let attack_cfg = scale.attack_config();
    let eval_cfg = EvalConfig::default();
    let n = scale.ensemble_size();
    let (private_images, _) = data
        .test
        .batch(0, scale.attack_targets().min(data.test.len()));

    // Unprotected reference for ΔAcc.
    let mut reference = SinglePipeline::new(case.config.clone(), DefenseKind::NoDefense, 100)?;
    reference.train_supervised(&data.train, &train_cfg)?;
    let baseline_accuracy = reference.evaluate(&data.test, &eval_cfg)?;

    // Single baseline: fixed additive noise.
    let mut single = SinglePipeline::new(
        case.config.clone(),
        DefenseKind::AdditiveNoise {
            sigma: train_cfg.sigma,
        },
        101,
    )?;
    single.train_supervised(&data.train, &train_cfg)?;
    let single_acc = single.evaluate(&data.test, &eval_cfg)?;
    let single_attack = attack_single_pipeline(&single, &data.train, &private_images, &attack_cfg)?;

    // Ensembler.
    let trainer = EnsemblerTrainer::new(case.config.clone(), train_cfg.clone());
    let trained = trainer.train(n, case.selected, &data.train)?;
    let pipeline = trained.into_pipeline();
    let ensembler_acc = pipeline.evaluate(&data.test, &eval_cfg)?;

    let per_net = attack_all_single_nets(&pipeline, &data.train, &private_images, &attack_cfg)?;
    let best_ssim = per_net
        .iter()
        .cloned()
        .max_by(|a, b| a.ssim.total_cmp(&b.ssim))
        .expect("at least one network");
    let best_psnr = per_net
        .iter()
        .cloned()
        .max_by(|a, b| a.psnr.total_cmp(&b.psnr))
        .expect("at least one network");
    let adaptive = attack_adaptive(&pipeline, &data.train, &private_images, &attack_cfg)?;

    let delta = |acc: f32| (baseline_accuracy - acc) * 100.0;
    Ok(DefenseQualityResult {
        dataset: case.name.to_string(),
        baseline_accuracy,
        rows: vec![
            DefenseRow::new("Single", delta(single_acc), &single_attack),
            DefenseRow::new("Ours - Adaptive", delta(ensembler_acc), &adaptive),
            DefenseRow::new("Ours - SSIM", delta(ensembler_acc), &best_ssim),
            DefenseRow::new("Ours - PSNR", delta(ensembler_acc), &best_psnr),
        ],
    })
}

/// Runs the Table-II protocol on the CIFAR-10 stand-in: every baseline
/// defence plus the three Ensembler attack readings.
///
/// Every victim is driven through `&dyn Defense` — the harness contains no
/// per-pipeline dispatch.
///
/// # Errors
///
/// Propagates training, evaluation and attack failures.
pub fn run_defense_mechanisms(
    scale: ExperimentScale,
) -> Result<DefenseQualityResult, EnsemblerError> {
    let case = DatasetCase::cifar10(scale);
    let data = case.generate(13);
    let train_cfg = scale.train_config();
    let attack_cfg = scale.attack_config();
    let eval_cfg = EvalConfig::default();
    let n = scale.ensemble_size();
    let (private_images, _) = data
        .test
        .batch(0, scale.attack_targets().min(data.test.len()));

    let mut rows = Vec::new();

    // Unprotected reference (also the "None" row).
    let mut reference = SinglePipeline::new(case.config.clone(), DefenseKind::NoDefense, 200)?;
    reference.train_supervised(&data.train, &train_cfg)?;
    let baseline_accuracy = reference.evaluate(&data.test, &eval_cfg)?;
    let none_attack =
        attack_single_pipeline(&reference, &data.train, &private_images, &attack_cfg)?;
    rows.push(DefenseRow::new("None", 0.0, &none_attack));

    let delta = |acc: f32| (baseline_accuracy - acc) * 100.0;

    // Single-network baselines.
    let single_defenses = [
        (
            "Shredder",
            DefenseKind::Shredder {
                sigma: train_cfg.sigma,
                expansion: 1.0,
            },
        ),
        (
            "Single",
            DefenseKind::AdditiveNoise {
                sigma: train_cfg.sigma,
            },
        ),
        ("DR-single", DefenseKind::Dropout { probability: 0.3 }),
    ];
    for (i, (name, kind)) in single_defenses.into_iter().enumerate() {
        let mut victim = SinglePipeline::new(case.config.clone(), kind, 201 + i as u64)?;
        victim.train_supervised(&data.train, &train_cfg)?;
        let acc = victim.evaluate(&data.test, &eval_cfg)?;
        let outcome = attack_single_pipeline(&victim, &data.train, &private_images, &attack_cfg)?;
        rows.push(DefenseRow::new(name, delta(acc), &outcome));
    }

    // DR-N: dropout on the jointly trained ensemble (no stage-1 training).
    let trainer = EnsemblerTrainer::new(case.config.clone(), train_cfg.clone());
    let dr_ensemble = trainer.train_joint(n, case.selected, 0.3, &data.train)?;
    let dr_acc = dr_ensemble.evaluate(&data.test, &eval_cfg)?;
    let dr_attacks =
        attack_all_single_nets(&dr_ensemble, &data.train, &private_images, &attack_cfg)?;
    let dr_best_ssim = dr_attacks
        .iter()
        .cloned()
        .max_by(|a, b| a.ssim.total_cmp(&b.ssim))
        .expect("at least one network");
    let dr_best_psnr = dr_attacks
        .iter()
        .cloned()
        .max_by(|a, b| a.psnr.total_cmp(&b.psnr))
        .expect("at least one network");
    rows.push(DefenseRow::new(
        format!("DR-{n} - SSIM"),
        delta(dr_acc),
        &dr_best_ssim,
    ));
    rows.push(DefenseRow::new(
        format!("DR-{n} - PSNR"),
        delta(dr_acc),
        &dr_best_psnr,
    ));

    // Ensembler (full three-stage training).
    let trained = trainer.train(n, case.selected, &data.train)?;
    let pipeline = trained.into_pipeline();
    let acc = pipeline.evaluate(&data.test, &eval_cfg)?;
    let per_net = attack_all_single_nets(&pipeline, &data.train, &private_images, &attack_cfg)?;
    let best_ssim = per_net
        .iter()
        .cloned()
        .max_by(|a, b| a.ssim.total_cmp(&b.ssim))
        .expect("at least one network");
    let best_psnr = per_net
        .iter()
        .cloned()
        .max_by(|a, b| a.psnr.total_cmp(&b.psnr))
        .expect("at least one network");
    let adaptive = attack_adaptive(&pipeline, &data.train, &private_images, &attack_cfg)?;
    rows.push(DefenseRow::new("Ours - Adaptive", delta(acc), &adaptive));
    rows.push(DefenseRow::new("Ours - SSIM", delta(acc), &best_ssim));
    rows.push(DefenseRow::new("Ours - PSNR", delta(acc), &best_psnr));

    Ok(DefenseQualityResult {
        dataset: case.name.to_string(),
        baseline_accuracy,
        rows,
    })
}

/// Pretty-prints a defence-quality table in the paper's column order.
pub fn format_defense_table(result: &DefenseQualityResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} (unprotected accuracy {:.1}%)\n",
        result.dataset,
        result.baseline_accuracy * 100.0
    ));
    out.push_str(&format!(
        "{:<18} {:>8} {:>8} {:>8}\n",
        "Name", "dAcc(%)", "SSIM", "PSNR"
    ));
    for row in &result.rows {
        out.push_str(&format!(
            "{:<18} {:>8.2} {:>8.3} {:>8.2}\n",
            row.name, row.delta_accuracy_pct, row.ssim, row.psnr
        ));
    }
    out
}

/// A small helper shared by the examples and ablations: mean image distance
/// between two tensors, used as a quick sanity metric alongside SSIM/PSNR.
pub fn mean_absolute_error(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "shapes must match");
    a.sub(b).map(f32::abs).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // The variable is not set in the test environment.
        assert_eq!(ExperimentScale::from_env(), ExperimentScale::Quick);
        assert_eq!(ExperimentScale::Quick.ensemble_size(), 4);
        assert_eq!(ExperimentScale::Full.ensemble_size(), 10);
    }

    #[test]
    fn paper_cases_cover_the_three_datasets() {
        let cases = DatasetCase::paper_cases(ExperimentScale::Quick);
        assert_eq!(cases.len(), 3);
        assert!(cases[0].name.contains("CIFAR-10"));
        assert!(cases[1].name.contains("CIFAR-100"));
        assert!(cases[2].name.contains("CelebA"));
        for case in &cases {
            assert!(case.selected <= ExperimentScale::Quick.ensemble_size());
            assert!(case.config.validate().is_ok());
        }
    }

    #[test]
    fn defense_table_formatting_contains_all_rows() {
        let result = DefenseQualityResult {
            dataset: "demo".to_string(),
            baseline_accuracy: 0.5,
            rows: vec![DefenseRow {
                name: "Single".to_string(),
                delta_accuracy_pct: 1.0,
                ssim: 0.4,
                psnr: 8.0,
            }],
        };
        let text = format_defense_table(&result);
        assert!(text.contains("Single"));
        assert!(text.contains("SSIM"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn mean_absolute_error_basics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::full(&[2, 2], 0.5);
        assert!((mean_absolute_error(&a, &b) - 0.5).abs() < 1e-6);
        assert_eq!(mean_absolute_error(&a, &a), 0.0);
    }
}
