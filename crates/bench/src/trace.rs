//! Trace-replay workloads: a small committed text format for request
//! arrival traces, a deterministic synthesizer for bursty/diurnal shapes,
//! and an open-loop replayer that drives a serving deployment through the
//! recorded schedule.
//!
//! Steady open-loop QPS (the [`crate::load`] harness) answers "what does the
//! tail look like at rate X" — but real front-ends are not steady. The
//! continuous-acquisition pipelines this deployment models push bursts and
//! diurnal swings, and admission-control tuning validated only against
//! steady state is guesswork. A trace pins a realistic arrival shape down to
//! the microsecond so the same load is replayable on every checkout.
//!
//! # The trace format (`ensembler-trace v1`)
//!
//! Plain text, one request per line; blank lines and `#` comments are
//! ignored:
//!
//! ```text
//! # ensembler-trace v1
//! 0.000 outputs
//! 12.500 outputs
//! 13.250 predict
//! ```
//!
//! Each line is `<offset_ms> <kind>`: a non-negative, non-decreasing arrival
//! offset in milliseconds from the start of the run (microsecond precision;
//! equal offsets are a legal burst), then a request kind — `outputs` (one
//! `server_outputs` exchange) or `predict` (a full predict round trip).
//! Parsing is total: malformed lines, non-monotonic offsets, absurd rates,
//! oversized traces and empty traces are all typed [`TraceError`]s, never
//! panics, in the same spirit as the artifact codec's fuzz contract.
//!
//! [`Trace::render`] is canonical — `Trace::parse(&t.render()) == t` — so a
//! synthesized trace can be committed, diffed and replayed byte-for-byte.

use crate::load::{classify_outcome, percentile_ms, LoadRequest, Outcome};
use ensembler_tensor::{JsonValue, Rng};
use std::time::{Duration, Instant};

/// Hard cap on entries per trace: far above any committed workload, low
/// enough that a hostile file cannot balloon memory or thread counts.
pub const MAX_TRACE_ENTRIES: usize = 200_000;

/// Hard cap on the span of a trace (24 hours, in milliseconds).
pub const MAX_TRACE_SPAN_MS: f64 = 86_400_000.0;

/// Rate guard: every window of [`RATE_WINDOW`] consecutive arrivals must
/// span at least `RATE_WINDOW / MAX_WINDOW_QPS` seconds. Short bursts (up
/// to `RATE_WINDOW` back-to-back arrivals) stay legal; a *sustained*
/// schedule past 100k QPS is rejected as absurd before the replayer would
/// try to spawn threads at that rate.
pub const RATE_WINDOW: usize = 1_000;

/// See [`RATE_WINDOW`].
pub const MAX_WINDOW_QPS: f64 = 100_000.0;

/// What one trace line asks the replayer to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A full predict round trip (client features, server outputs,
    /// classification).
    Predict,
    /// One `server_outputs` exchange — the steady-state serving request.
    Outputs,
}

impl RequestKind {
    /// Every kind, in canonical report order.
    pub const ALL: [RequestKind; 2] = [RequestKind::Predict, RequestKind::Outputs];

    /// The token this kind uses in a trace file.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Predict => "predict",
            RequestKind::Outputs => "outputs",
        }
    }

    fn parse(token: &str) -> Result<Self, String> {
        match token {
            "predict" => Ok(RequestKind::Predict),
            "outputs" => Ok(RequestKind::Outputs),
            other => Err(format!(
                "unknown request kind {other:?} (expected `predict` or `outputs`)"
            )),
        }
    }
}

impl std::fmt::Display for RequestKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One arrival in a trace: when (offset from run start, microsecond
/// precision) and what to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Arrival offset from the start of the run, in microseconds.
    pub offset_us: u64,
    /// The request this arrival issues.
    pub kind: RequestKind,
}

impl TraceEntry {
    /// The arrival offset as a [`Duration`].
    pub fn offset(&self) -> Duration {
        Duration::from_micros(self.offset_us)
    }
}

/// Why a trace failed to parse or validate. Every malformed input maps to
/// one of these — the parser never panics, mirroring the artifact codec's
/// fault-injection contract.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file contained no entries (only comments and blank lines count
    /// as empty too): there is nothing to replay.
    Empty,
    /// A line did not parse as `<offset_ms> <kind>`.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// An arrival offset went backwards.
    NonMonotonic {
        /// 1-based line number of the offending entry.
        line: usize,
        /// The previous entry's offset, in milliseconds.
        previous_ms: f64,
        /// The offending offset, in milliseconds.
        offset_ms: f64,
    },
    /// A window of [`RATE_WINDOW`] consecutive arrivals was faster than
    /// [`MAX_WINDOW_QPS`] sustained.
    AbsurdRate {
        /// 1-based line number where the window ends.
        line: usize,
        /// The span the window covered, in milliseconds.
        window_span_ms: f64,
        /// The minimum legal span for that window, in milliseconds.
        min_span_ms: f64,
    },
    /// More than [`MAX_TRACE_ENTRIES`] entries.
    TooLong {
        /// How many entries the input holds (counting stops at the cap).
        entries: usize,
        /// The cap that was exceeded.
        max: usize,
    },
    /// The final offset exceeded [`MAX_TRACE_SPAN_MS`].
    SpanTooLong {
        /// The offending offset, in milliseconds.
        offset_ms: f64,
        /// The cap it exceeded, in milliseconds.
        max_ms: f64,
    },
    /// The trace file could not be read.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace holds no entries"),
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            TraceError::NonMonotonic {
                line,
                previous_ms,
                offset_ms,
            } => write!(
                f,
                "trace line {line}: offset {offset_ms} ms goes backwards (previous {previous_ms} ms)"
            ),
            TraceError::AbsurdRate {
                line,
                window_span_ms,
                min_span_ms,
            } => write!(
                f,
                "trace line {line}: {RATE_WINDOW} arrivals in {window_span_ms:.3} ms (sustained rate above {MAX_WINDOW_QPS} QPS; window must span at least {min_span_ms:.3} ms)"
            ),
            TraceError::TooLong { entries, max } => {
                write!(f, "trace holds {entries}+ entries (cap {max})")
            }
            TraceError::SpanTooLong { offset_ms, max_ms } => {
                write!(f, "trace offset {offset_ms} ms exceeds the {max_ms} ms span cap")
            }
            TraceError::Io(reason) => write!(f, "trace io: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated arrival trace: non-empty, non-decreasing offsets, bounded
/// length, span and sustained rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Builds a trace from raw entries, running the full validation the
    /// parser applies (entry indices stand in for line numbers in errors).
    pub fn from_entries(entries: Vec<TraceEntry>) -> Result<Self, TraceError> {
        validate_entries(&entries, |index| index + 1)?;
        Ok(Self { entries })
    }

    /// Parses the text trace format. See the [module docs](self) for the
    /// grammar and every typed failure mode.
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut lines: Vec<usize> = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let offset_token = tokens.next().expect("non-empty trimmed line");
            let kind_token = tokens.next().ok_or_else(|| TraceError::Malformed {
                line,
                reason: "expected `<offset_ms> <kind>`, found one token".to_string(),
            })?;
            if let Some(extra) = tokens.next() {
                return Err(TraceError::Malformed {
                    line,
                    reason: format!("unexpected trailing token {extra:?}"),
                });
            }
            let offset_ms: f64 = offset_token.parse().map_err(|_| TraceError::Malformed {
                line,
                reason: format!("offset {offset_token:?} is not a number"),
            })?;
            if !offset_ms.is_finite() || offset_ms < 0.0 {
                return Err(TraceError::Malformed {
                    line,
                    reason: format!("offset {offset_token:?} must be finite and non-negative"),
                });
            }
            if offset_ms > MAX_TRACE_SPAN_MS {
                return Err(TraceError::SpanTooLong {
                    offset_ms,
                    max_ms: MAX_TRACE_SPAN_MS,
                });
            }
            let kind = RequestKind::parse(kind_token)
                .map_err(|reason| TraceError::Malformed { line, reason })?;
            if entries.len() >= MAX_TRACE_ENTRIES {
                return Err(TraceError::TooLong {
                    entries: entries.len() + 1,
                    max: MAX_TRACE_ENTRIES,
                });
            }
            entries.push(TraceEntry {
                offset_us: (offset_ms * 1_000.0).round() as u64,
                kind,
            });
            lines.push(line);
        }
        validate_entries(&entries, |index| lines[index])?;
        Ok(Self { entries })
    }

    /// Reads and parses a trace file.
    pub fn load(path: &std::path::Path) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Renders the canonical text form: `Trace::parse(&t.render()) == t`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 16 + 64);
        out.push_str("# ensembler-trace v1\n");
        out.push_str(&format!(
            "# {} entries over {:.3} ms\n",
            self.entries.len(),
            self.duration().as_secs_f64() * 1e3
        ));
        for entry in &self.entries {
            out.push_str(&format!(
                "{}.{:03} {}\n",
                entry.offset_us / 1_000,
                entry.offset_us % 1_000,
                entry.kind
            ));
        }
        out
    }

    /// The validated arrivals, ascending by offset.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false` — an empty trace cannot be constructed (it is a typed
    /// [`TraceError::Empty`]). Present for clippy's `len`-without-`is_empty`
    /// convention.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The arrival schedule alone — what the determinism property test
    /// compares across runs.
    pub fn schedule(&self) -> Vec<Duration> {
        self.entries.iter().map(TraceEntry::offset).collect()
    }

    /// Offset of the last arrival.
    pub fn duration(&self) -> Duration {
        self.entries
            .last()
            .map(TraceEntry::offset)
            .unwrap_or(Duration::ZERO)
    }

    /// Mean arrival rate over the whole trace, in requests per second.
    pub fn mean_qps(&self) -> f64 {
        let span_s = self.duration().as_secs_f64();
        if span_s <= 0.0 {
            return self.entries.len() as f64; // a pure burst at t=0
        }
        self.entries.len() as f64 / span_s
    }

    /// The busiest sliding window of `window` duration, in requests per
    /// second — the number an admission budget has to survive.
    pub fn peak_qps(&self, window: Duration) -> f64 {
        let window_us = window.as_micros().max(1) as u64;
        let mut best = 0usize;
        let mut lo = 0usize;
        for hi in 0..self.entries.len() {
            while self.entries[hi].offset_us - self.entries[lo].offset_us >= window_us {
                lo += 1;
            }
            best = best.max(hi - lo + 1);
        }
        best as f64 / window.as_secs_f64()
    }
}

fn validate_entries(
    entries: &[TraceEntry],
    line_of: impl Fn(usize) -> usize,
) -> Result<(), TraceError> {
    if entries.is_empty() {
        return Err(TraceError::Empty);
    }
    if entries.len() > MAX_TRACE_ENTRIES {
        return Err(TraceError::TooLong {
            entries: entries.len(),
            max: MAX_TRACE_ENTRIES,
        });
    }
    let min_window_us = (RATE_WINDOW as f64 / MAX_WINDOW_QPS * 1e6) as u64;
    for (index, entry) in entries.iter().enumerate() {
        if entry.offset_us as f64 / 1_000.0 > MAX_TRACE_SPAN_MS {
            return Err(TraceError::SpanTooLong {
                offset_ms: entry.offset_us as f64 / 1_000.0,
                max_ms: MAX_TRACE_SPAN_MS,
            });
        }
        if index > 0 {
            let previous = entries[index - 1].offset_us;
            if entry.offset_us < previous {
                return Err(TraceError::NonMonotonic {
                    line: line_of(index),
                    previous_ms: previous as f64 / 1_000.0,
                    offset_ms: entry.offset_us as f64 / 1_000.0,
                });
            }
        }
        if index >= RATE_WINDOW {
            let span_us = entry.offset_us - entries[index - RATE_WINDOW].offset_us;
            if span_us < min_window_us {
                return Err(TraceError::AbsurdRate {
                    line: line_of(index),
                    window_span_ms: span_us as f64 / 1_000.0,
                    min_span_ms: min_window_us as f64 / 1_000.0,
                });
            }
        }
    }
    Ok(())
}

/// The arrival-rate shapes [`synthesize`] can generate. All rates are in
/// requests per second; all durations in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceShape {
    /// Constant rate — the trace-format twin of the open-loop harness,
    /// useful for differential runs.
    Steady {
        /// Arrival rate.
        qps: f64,
        /// Trace length.
        duration_s: f64,
    },
    /// A square wave: `burst_qps` for the first `burst_fraction` of every
    /// period, `base_qps` for the rest — the on/off shape of frame-dump
    /// acquisition windows.
    Bursty {
        /// Rate outside bursts.
        base_qps: f64,
        /// Rate inside bursts.
        burst_qps: f64,
        /// Length of one burst/quiet cycle.
        period_s: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
        /// Trace length.
        duration_s: f64,
    },
    /// A smooth sinusoidal swing between `low_qps` and `peak_qps` over each
    /// period — a compressed day of diurnal traffic.
    Diurnal {
        /// Trough rate.
        low_qps: f64,
        /// Crest rate.
        peak_qps: f64,
        /// Length of one low→peak→low cycle.
        period_s: f64,
        /// Trace length.
        duration_s: f64,
    },
}

impl TraceShape {
    /// The instantaneous arrival rate at `t` seconds.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            TraceShape::Steady { qps, .. } => qps,
            TraceShape::Bursty {
                base_qps,
                burst_qps,
                period_s,
                burst_fraction,
                ..
            } => {
                if (t_s % period_s) < period_s * burst_fraction {
                    burst_qps
                } else {
                    base_qps
                }
            }
            TraceShape::Diurnal {
                low_qps,
                peak_qps,
                period_s,
                ..
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                low_qps + (peak_qps - low_qps) * (0.5 - 0.5 * phase.cos())
            }
        }
    }

    fn duration_s(&self) -> f64 {
        match *self {
            TraceShape::Steady { duration_s, .. }
            | TraceShape::Bursty { duration_s, .. }
            | TraceShape::Diurnal { duration_s, .. } => duration_s,
        }
    }

    fn validate(&self) -> Result<(), TraceError> {
        let bad = |reason: &str| TraceError::Malformed {
            line: 0,
            reason: format!("invalid shape: {reason}"),
        };
        let positive = |v: f64, name: &str| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(bad(&format!("{name} must be positive and finite, got {v}")))
            }
        };
        match *self {
            TraceShape::Steady { qps, duration_s } => {
                positive(qps, "qps")?;
                positive(duration_s, "duration_s")
            }
            TraceShape::Bursty {
                base_qps,
                burst_qps,
                period_s,
                burst_fraction,
                duration_s,
            } => {
                positive(base_qps, "base_qps")?;
                positive(burst_qps, "burst_qps")?;
                positive(period_s, "period_s")?;
                positive(duration_s, "duration_s")?;
                if !(burst_fraction > 0.0 && burst_fraction < 1.0) {
                    return Err(bad(&format!(
                        "burst_fraction must be in (0, 1), got {burst_fraction}"
                    )));
                }
                Ok(())
            }
            TraceShape::Diurnal {
                low_qps,
                peak_qps,
                period_s,
                duration_s,
            } => {
                positive(low_qps, "low_qps")?;
                positive(peak_qps, "peak_qps")?;
                positive(period_s, "period_s")?;
                positive(duration_s, "duration_s")
            }
        }
    }
}

/// Synthesizes a trace from a rate shape, deterministically in `seed`: the
/// same `(shape, seed)` always produces the byte-identical trace (the
/// property suite pins it, and the committed example trace is reproduced by
/// its generator spec in CI). Inter-arrival gaps are `1/rate` with ±50%
/// uniform jitter; roughly one arrival in eight is a full `predict`, the
/// rest are `outputs` exchanges.
///
/// # Errors
///
/// Returns a typed [`TraceError`] for non-positive or non-finite shape
/// parameters, or when the shape produces a trace past the length cap.
pub fn synthesize(shape: &TraceShape, seed: u64) -> Result<Trace, TraceError> {
    shape.validate()?;
    let duration_s = shape.duration_s();
    let mut rng = Rng::seed_from(seed ^ 0x7472_6163); // "trac"
    let mut entries = Vec::new();
    let mut t_s = 0.0f64;
    loop {
        let rate = shape.rate_at(t_s).max(1e-9);
        let jitter = rng.uniform(0.5, 1.5) as f64;
        t_s += jitter / rate;
        if t_s >= duration_s {
            break;
        }
        if entries.len() >= MAX_TRACE_ENTRIES {
            return Err(TraceError::TooLong {
                entries: entries.len() + 1,
                max: MAX_TRACE_ENTRIES,
            });
        }
        let kind = if rng.below(8) == 0 {
            RequestKind::Predict
        } else {
            RequestKind::Outputs
        };
        entries.push(TraceEntry {
            offset_us: (t_s * 1e6).round() as u64,
            kind,
        });
    }
    Trace::from_entries(entries)
}

/// The generator spec of the committed example trace
/// (`crates/bench/traces/bursty_demo.trace`): four seconds of 20 QPS base
/// load with 120 QPS bursts for the first quarter of every second, seed 7.
/// `trace_gen` writes it with its defaults and the determinism suite pins
/// the committed file byte-for-byte against this function.
pub fn demo_bursty_trace() -> Trace {
    synthesize(
        &TraceShape::Bursty {
            base_qps: 20.0,
            burst_qps: 120.0,
            period_s: 1.0,
            burst_fraction: 0.25,
            duration_s: 4.0,
        },
        7,
    )
    .expect("the demo shape is valid and bounded")
}

/// Outcome tally for one request kind in a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindTally {
    /// The kind this row counts.
    pub kind: RequestKind,
    /// Arrivals of this kind the trace scheduled.
    pub issued: usize,
    /// Completed.
    pub ok: usize,
    /// Typed `Overloaded` rejections.
    pub rejected: usize,
    /// Everything else.
    pub failed: usize,
}

/// What one trace replay measured: the trace's own shape numbers, per-kind
/// outcome tallies (deterministic given a deterministic deployment) and the
/// timing the machine produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Arrivals replayed.
    pub entries: usize,
    /// Trace span in seconds.
    pub duration_s: f64,
    /// Mean scheduled rate.
    pub mean_qps: f64,
    /// Busiest 1-second window of the schedule.
    pub peak_qps_1s: f64,
    /// Completed requests.
    pub ok: usize,
    /// Typed `Overloaded` rejections.
    pub rejected: usize,
    /// Transport/protocol/inference failures.
    pub failed: usize,
    /// Completions per second actually achieved.
    pub achieved_qps: f64,
    /// Median latency of completed requests, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, in milliseconds.
    pub p999_ms: f64,
    /// Slowest completed request, in milliseconds.
    pub max_ms: f64,
    /// Per-kind outcome rows in [`RequestKind::ALL`] order.
    pub per_kind: Vec<KindTally>,
}

impl TraceReport {
    /// The outcome classification alone — the part of a replay that must be
    /// identical across two runs of the same trace against the same
    /// deployment (the timing fields are the machine's, not the trace's).
    pub fn outcome_signature(&self) -> (usize, usize, usize, Vec<KindTally>) {
        (self.ok, self.rejected, self.failed, self.per_kind.clone())
    }

    /// JSON representation for `BENCH_PERF.json`'s `scenarios` section.
    pub fn to_json(&self) -> JsonValue {
        let num = |v: f64| JsonValue::Number((v * 1e3).round() / 1e3);
        let per_kind: Vec<JsonValue> = self
            .per_kind
            .iter()
            .map(|tally| {
                JsonValue::Object(vec![
                    (
                        "kind".to_string(),
                        JsonValue::String(tally.kind.to_string()),
                    ),
                    ("issued".to_string(), JsonValue::Number(tally.issued as f64)),
                    ("ok".to_string(), JsonValue::Number(tally.ok as f64)),
                    (
                        "rejected".to_string(),
                        JsonValue::Number(tally.rejected as f64),
                    ),
                    ("failed".to_string(), JsonValue::Number(tally.failed as f64)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "entries".to_string(),
                JsonValue::Number(self.entries as f64),
            ),
            ("duration_s".to_string(), num(self.duration_s)),
            ("mean_qps".to_string(), num(self.mean_qps)),
            ("peak_qps_1s".to_string(), num(self.peak_qps_1s)),
            ("ok".to_string(), JsonValue::Number(self.ok as f64)),
            (
                "rejected".to_string(),
                JsonValue::Number(self.rejected as f64),
            ),
            ("failed".to_string(), JsonValue::Number(self.failed as f64)),
            ("achieved_qps".to_string(), num(self.achieved_qps)),
            ("p50_ms".to_string(), num(self.p50_ms)),
            ("p99_ms".to_string(), num(self.p99_ms)),
            ("p999_ms".to_string(), num(self.p999_ms)),
            ("max_ms".to_string(), num(self.max_ms)),
            ("per_kind".to_string(), JsonValue::Array(per_kind)),
        ])
    }

    /// One-line human summary, as printed by `load_gen --replay`.
    pub fn summary(&self) -> String {
        format!(
            "replay {:5} reqs over {:6.2} s (mean {:6.1} qps, peak-1s {:6.1}) | {} ok, {} rejected, {} failed | p50 {:8.3} ms | p99 {:8.3} ms | p999 {:8.3} ms",
            self.entries,
            self.duration_s,
            self.mean_qps,
            self.peak_qps_1s,
            self.ok,
            self.rejected,
            self.failed,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
        )
    }
}

/// Replays `trace` open-loop against a deployment: each arrival fires at its
/// recorded offset on its own thread (a slow response never delays a later
/// arrival), using the request closure `request_for` built per kind, and
/// every outcome is classified with the same typed rules as
/// [`crate::load::run_open_loop`].
pub fn run_trace_replay(
    trace: &Trace,
    request_for: impl Fn(RequestKind) -> LoadRequest,
) -> TraceReport {
    let requests: Vec<(RequestKind, LoadRequest)> = RequestKind::ALL
        .iter()
        .map(|&kind| (kind, request_for(kind)))
        .collect();
    let request_of = |kind: RequestKind| -> LoadRequest {
        let (_, request) = requests
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("ALL covers every kind");
        std::sync::Arc::clone(request)
    };

    let start = Instant::now();
    let mut handles = Vec::with_capacity(trace.len());
    for entry in trace.entries() {
        let due = start + entry.offset();
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let request = request_of(entry.kind);
        let kind = entry.kind;
        handles.push(std::thread::spawn(move || {
            let issued = Instant::now();
            let result = request();
            (kind, issued.elapsed(), result)
        }));
    }

    let mut tallies: Vec<KindTally> = RequestKind::ALL
        .iter()
        .map(|&kind| KindTally {
            kind,
            issued: 0,
            ok: 0,
            rejected: 0,
            failed: 0,
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(trace.len());
    for handle in handles {
        let Ok((kind, elapsed, result)) = handle.join() else {
            // A panicking request thread counts as a failure of the first
            // kind's tally being unknowable; classify it under Outputs.
            let tally = tallies
                .iter_mut()
                .find(|t| t.kind == RequestKind::Outputs)
                .expect("outputs tally");
            tally.issued += 1;
            tally.failed += 1;
            continue;
        };
        let tally = tallies
            .iter_mut()
            .find(|t| t.kind == kind)
            .expect("tally for kind");
        tally.issued += 1;
        match classify_outcome(&result) {
            Outcome::Ok => {
                tally.ok += 1;
                latencies_ms.push(elapsed.as_secs_f64() * 1e3);
            }
            Outcome::Rejected => tally.rejected += 1,
            Outcome::Failed => tally.failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);
    let ok: usize = tallies.iter().map(|t| t.ok).sum();
    TraceReport {
        entries: trace.len(),
        duration_s: trace.duration().as_secs_f64(),
        mean_qps: trace.mean_qps(),
        peak_qps_1s: trace.peak_qps(Duration::from_secs(1)),
        ok,
        rejected: tallies.iter().map(|t| t.rejected).sum(),
        failed: tallies.iter().map(|t| t.failed).sum(),
        achieved_qps: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        p999_ms: percentile_ms(&latencies_ms, 0.999),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        per_kind: tallies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_serve::{ErrorCode, ServeError, WireError};
    use std::sync::Arc;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let trace = Trace::parse(
            "# ensembler-trace v1\n\n0.000 outputs\n12.500 outputs\n  13.250   predict  \n",
        )
        .expect("valid trace");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.entries()[1].offset_us, 12_500);
        assert_eq!(trace.entries()[2].kind, RequestKind::Predict);
        assert_eq!(trace.duration(), Duration::from_micros(13_250));
    }

    #[test]
    fn render_parse_roundtrip_is_identity() {
        let trace = demo_bursty_trace();
        let reparsed = Trace::parse(&trace.render()).expect("canonical form parses");
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn synthesis_is_deterministic_in_the_seed() {
        let shape = TraceShape::Diurnal {
            low_qps: 5.0,
            peak_qps: 50.0,
            period_s: 2.0,
            duration_s: 3.0,
        };
        assert_eq!(
            synthesize(&shape, 9).unwrap(),
            synthesize(&shape, 9).unwrap()
        );
        assert_ne!(
            synthesize(&shape, 9).unwrap(),
            synthesize(&shape, 10).unwrap()
        );
    }

    #[test]
    fn peak_qps_sees_the_bursts() {
        let trace = demo_bursty_trace();
        let mean = trace.mean_qps();
        let peak = trace.peak_qps(Duration::from_millis(250));
        assert!(
            peak > mean * 1.5,
            "bursty trace must have a peak well above its mean (mean {mean:.1}, peak {peak:.1})"
        );
    }

    #[test]
    fn replay_classifies_and_tallies_per_kind() {
        let trace = Trace::from_entries(
            (0..30)
                .map(|i| TraceEntry {
                    offset_us: i * 500,
                    kind: if i % 3 == 0 {
                        RequestKind::Predict
                    } else {
                        RequestKind::Outputs
                    },
                })
                .collect(),
        )
        .expect("valid entries");
        let report = run_trace_replay(&trace, |kind| match kind {
            RequestKind::Predict => Arc::new(|| Ok(())),
            RequestKind::Outputs => Arc::new(|| {
                Err(ServeError::Remote(WireError {
                    code: ErrorCode::Overloaded,
                    message: "budget".to_string(),
                }))
            }),
        });
        assert_eq!(report.entries, 30);
        assert_eq!(report.ok, 10);
        assert_eq!(report.rejected, 20);
        assert_eq!(report.failed, 0);
        let predict = report
            .per_kind
            .iter()
            .find(|t| t.kind == RequestKind::Predict);
        assert_eq!(predict.unwrap().ok, 10);
        let outputs = report
            .per_kind
            .iter()
            .find(|t| t.kind == RequestKind::Outputs);
        assert_eq!(outputs.unwrap().rejected, 20);
        let rendered = report.to_json().render_pretty();
        assert!(rendered.contains("peak_qps_1s"));
        assert!(rendered.contains("per_kind"));
    }
}
