//! Streaming sessions: N stateful clients each pushing frames at a fixed
//! per-session rate over the shared multiplexed connection, with per-session
//! jitter and stall accounting.
//!
//! The open-loop harness ([`crate::load`]) models many independent one-shot
//! clients; the acquisition front-ends this deployment actually serves look
//! different — a handful of *sessions*, each emitting a steady frame stream
//! (a detector readout, a camera feed), all multiplexed over one protocol v5
//! connection. What matters to such a client is not only tail latency but
//! *cadence*: a frame that completes after the next frame was due is a
//! **stall** (the consumer skipped a beat), and the spread of
//! inter-completion gaps around the ideal period is **jitter**. This module
//! measures both, per session and in aggregate.
//!
//! Within a session the harness stays open-loop: frame `k` is issued at its
//! due time `k / frame_hz` regardless of whether frame `k-1` has completed,
//! exactly like a real sensor that does not pause for a slow server.

use crate::load::{classify_outcome, percentile_ms, LoadRequest, Outcome};
use ensembler_tensor::JsonValue;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of a streaming run: how many sessions, how fast each one pushes,
/// and for how many frames.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Concurrent sessions, each with its own frame clock.
    pub sessions: usize,
    /// Frames per second *per session*.
    pub frame_hz: f64,
    /// Frames each session pushes before closing.
    pub frames_per_session: usize,
}

/// What one session measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session index (stable across runs: sessions are numbered, not raced).
    pub session: usize,
    /// Frames issued.
    pub frames: usize,
    /// Frames that completed.
    pub ok: usize,
    /// Frames shed with a typed `Overloaded` rejection.
    pub rejected: usize,
    /// Frames that failed any other way.
    pub failed: usize,
    /// Median frame latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile frame latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest frame, milliseconds.
    pub max_ms: f64,
    /// Frames that completed after the *next* frame was already due.
    pub stalls: usize,
    /// Mean |inter-completion gap − ideal period|, milliseconds.
    pub jitter_mean_ms: f64,
    /// Worst |inter-completion gap − ideal period|, milliseconds.
    pub jitter_max_ms: f64,
}

/// Aggregate of a full streaming run across all sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Sessions run.
    pub sessions: usize,
    /// Per-session frame rate the run targeted.
    pub frame_hz: f64,
    /// Frames per session.
    pub frames_per_session: usize,
    /// Completed frames across all sessions.
    pub ok: usize,
    /// Typed `Overloaded` rejections across all sessions.
    pub rejected: usize,
    /// Other failures across all sessions.
    pub failed: usize,
    /// Stalls across all sessions.
    pub stalls: usize,
    /// Median frame latency across all sessions, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile frame latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile frame latency, milliseconds.
    pub p999_ms: f64,
    /// Slowest frame anywhere, milliseconds.
    pub max_ms: f64,
    /// Mean of the per-session mean jitters, milliseconds.
    pub jitter_mean_ms: f64,
    /// Worst jitter seen by any session, milliseconds.
    pub jitter_max_ms: f64,
    /// The individual sessions, in session-index order.
    pub per_session: Vec<SessionReport>,
}

impl StreamReport {
    /// JSON representation for `BENCH_PERF.json`'s `scenarios` section.
    pub fn to_json(&self) -> JsonValue {
        let num = |v: f64| JsonValue::Number((v * 1e3).round() / 1e3);
        JsonValue::Object(vec![
            (
                "sessions".to_string(),
                JsonValue::Number(self.sessions as f64),
            ),
            ("frame_hz".to_string(), num(self.frame_hz)),
            (
                "frames_per_session".to_string(),
                JsonValue::Number(self.frames_per_session as f64),
            ),
            ("ok".to_string(), JsonValue::Number(self.ok as f64)),
            (
                "rejected".to_string(),
                JsonValue::Number(self.rejected as f64),
            ),
            ("failed".to_string(), JsonValue::Number(self.failed as f64)),
            ("stalls".to_string(), JsonValue::Number(self.stalls as f64)),
            ("p50_ms".to_string(), num(self.p50_ms)),
            ("p99_ms".to_string(), num(self.p99_ms)),
            ("p999_ms".to_string(), num(self.p999_ms)),
            ("max_ms".to_string(), num(self.max_ms)),
            ("jitter_mean_ms".to_string(), num(self.jitter_mean_ms)),
            ("jitter_max_ms".to_string(), num(self.jitter_max_ms)),
        ])
    }

    /// One-line human summary, as printed by `load_gen --stream`.
    pub fn summary(&self) -> String {
        format!(
            "stream {:2} sessions x {:5.1} Hz x {:4} frames | {} ok, {} rejected, {} failed | {} stalls | p50 {:8.3} ms | p99 {:8.3} ms | jitter mean {:6.3} ms max {:6.3} ms",
            self.sessions,
            self.frame_hz,
            self.frames_per_session,
            self.ok,
            self.rejected,
            self.failed,
            self.stalls,
            self.p50_ms,
            self.p99_ms,
            self.jitter_mean_ms,
            self.jitter_max_ms,
        )
    }
}

/// Runs `config.sessions` concurrent streaming sessions. Each session gets
/// its request closure from `request_for_session(session_index)` once and
/// then pushes `frames_per_session` frames at `frame_hz`, each frame on its
/// own thread so a slow response never delays the session's clock. Outcomes
/// are classified with the same typed rules as every other harness in this
/// crate.
///
/// # Panics
///
/// Panics if the config has zero sessions, zero frames or a non-positive
/// rate — a misconfigured harness is a bug, not a load result.
pub fn run_streaming(
    request_for_session: &(dyn Fn(usize) -> LoadRequest + Sync),
    config: &StreamConfig,
) -> StreamReport {
    assert!(
        config.sessions > 0 && config.frames_per_session > 0 && config.frame_hz > 0.0,
        "a streaming scenario needs at least one session, one frame and a positive rate"
    );
    let period = Duration::from_secs_f64(1.0 / config.frame_hz);

    let per_session: Vec<(SessionReport, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.sessions)
            .map(|session| {
                let request = request_for_session(session);
                scope
                    .spawn(move || run_session(session, request, config.frames_per_session, period))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("session thread panicked"))
            .collect()
    });

    // Aggregate percentiles need the raw samples, which the per-session
    // reports deliberately do not carry — run_session returns them alongside.
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut reports = Vec::with_capacity(per_session.len());
    for (report, mut samples) in per_session {
        latencies_ms.append(&mut samples);
        reports.push(report);
    }
    latencies_ms.sort_by(f64::total_cmp);

    let jitter_mean_ms = if reports.is_empty() {
        0.0
    } else {
        reports.iter().map(|r| r.jitter_mean_ms).sum::<f64>() / reports.len() as f64
    };
    StreamReport {
        sessions: config.sessions,
        frame_hz: config.frame_hz,
        frames_per_session: config.frames_per_session,
        ok: reports.iter().map(|r| r.ok).sum(),
        rejected: reports.iter().map(|r| r.rejected).sum(),
        failed: reports.iter().map(|r| r.failed).sum(),
        stalls: reports.iter().map(|r| r.stalls).sum(),
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        p999_ms: percentile_ms(&latencies_ms, 0.999),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        jitter_mean_ms,
        jitter_max_ms: reports.iter().map(|r| r.jitter_max_ms).fold(0.0, f64::max),
        per_session: reports,
    }
}

/// One session: issue frames at their due times, join all frame threads,
/// reduce to a report plus the raw latency samples (for aggregate
/// percentiles).
fn run_session(
    session: usize,
    request: LoadRequest,
    frames: usize,
    period: Duration,
) -> (SessionReport, Vec<f64>) {
    let start = Instant::now();
    let mut handles = Vec::with_capacity(frames);
    for frame in 0..frames {
        let due = start + period.mul_f64(frame as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let request = Arc::clone(&request);
        handles.push(std::thread::spawn(move || {
            let issued = Instant::now();
            let result = request();
            (frame, issued.elapsed(), result, start.elapsed())
        }));
    }

    let mut ok = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let mut stalls = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(frames);
    let mut completion_offsets: Vec<Duration> = Vec::with_capacity(frames);
    for handle in handles {
        let Ok((frame, elapsed, result, completed_at)) = handle.join() else {
            failed += 1;
            continue;
        };
        match classify_outcome(&result) {
            Outcome::Ok => {
                ok += 1;
                latencies_ms.push(elapsed.as_secs_f64() * 1e3);
                completion_offsets.push(completed_at);
                // Frame `frame` stalls the stream if it outlived the due
                // time of frame `frame + 1`.
                if completed_at > period.mul_f64((frame + 1) as f64) {
                    stalls += 1;
                }
            }
            Outcome::Rejected => rejected += 1,
            Outcome::Failed => failed += 1,
        }
    }

    latencies_ms.sort_by(f64::total_cmp);
    completion_offsets.sort();
    let period_ms = period.as_secs_f64() * 1e3;
    let mut jitter_sum = 0.0f64;
    let mut jitter_max = 0.0f64;
    let mut gaps = 0usize;
    for pair in completion_offsets.windows(2) {
        let gap_ms = (pair[1] - pair[0]).as_secs_f64() * 1e3;
        let jitter = (gap_ms - period_ms).abs();
        jitter_sum += jitter;
        jitter_max = jitter_max.max(jitter);
        gaps += 1;
    }

    let report = SessionReport {
        session,
        frames,
        ok,
        rejected,
        failed,
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        stalls,
        jitter_mean_ms: if gaps > 0 {
            jitter_sum / gaps as f64
        } else {
            0.0
        },
        jitter_max_ms: jitter_max,
    };
    (report, latencies_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_serve::{ErrorCode, ServeError, WireError};

    #[test]
    fn sessions_stay_open_loop_and_tally_outcomes() {
        let config = StreamConfig {
            sessions: 3,
            frame_hz: 200.0,
            frames_per_session: 20,
        };
        let started = Instant::now();
        let report = run_streaming(
            &|session| -> LoadRequest {
                if session == 2 {
                    Arc::new(|| {
                        Err(ServeError::Remote(WireError {
                            code: ErrorCode::Overloaded,
                            message: "budget".to_string(),
                        }))
                    })
                } else {
                    Arc::new(|| Ok(()))
                }
            },
            &config,
        );
        let wall = started.elapsed();
        assert_eq!(report.ok, 40);
        assert_eq!(report.rejected, 20);
        assert_eq!(report.failed, 0);
        assert_eq!(report.per_session.len(), 3);
        assert_eq!(report.per_session[2].rejected, 20);
        // 20 frames at 200 Hz is a 95 ms schedule; instant responses must
        // not stretch it past ~3x (generous for a loaded CI machine).
        assert!(
            wall < Duration::from_millis(400),
            "streaming run took {wall:?}, schedule is ~95 ms"
        );
        let rendered = report.to_json().render_pretty();
        assert!(rendered.contains("jitter_mean_ms"));
        assert!(report.summary().contains("3 sessions"));
    }

    #[test]
    fn slow_frames_are_counted_as_stalls() {
        let config = StreamConfig {
            sessions: 1,
            frame_hz: 100.0, // 10 ms period
            frames_per_session: 8,
        };
        let report = run_streaming(
            &|_| -> LoadRequest {
                Arc::new(|| {
                    std::thread::sleep(Duration::from_millis(25));
                    Ok(())
                })
            },
            &config,
        );
        assert_eq!(report.ok, 8);
        // Every frame takes 2.5 periods, so every frame outlives the next
        // frame's due time.
        assert_eq!(
            report.stalls, 8,
            "25 ms responses at a 10 ms period must all stall"
        );
    }

    #[test]
    #[should_panic(expected = "streaming scenario")]
    fn zero_sessions_is_a_configuration_bug() {
        let _ = run_streaming(
            &|_| -> LoadRequest { Arc::new(|| Ok(())) },
            &StreamConfig {
                sessions: 0,
                frame_hz: 10.0,
                frames_per_session: 1,
            },
        );
    }
}
