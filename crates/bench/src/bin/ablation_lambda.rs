//! Ablation: sensitivity of Ensembler's defence quality to the cosine
//! regularization strength λ (Eq. 3).
//!
//! For each λ the harness trains an Ensembler on the CIFAR-10 stand-in,
//! mounts the strongest single-network attack and the adaptive attack, and
//! reports accuracy and reconstruction quality.
//!
//! Usage: `cargo run -p ensembler-bench --bin ablation_lambda --release`

use ensembler::{Defense, EnsemblerTrainer, EvalConfig};
use ensembler_attack::{attack_adaptive, attack_all_single_nets};
use ensembler_bench::{DatasetCase, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let case = DatasetCase::cifar10(scale);
    let data = case.generate(17);
    let attack_cfg = scale.attack_config();
    let n = scale.ensemble_size();
    let (private_images, _) = data
        .test
        .batch(0, scale.attack_targets().min(data.test.len()));

    println!("== Ablation: regularization strength lambda ({scale:?} scale) ==\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14}",
        "lambda", "accuracy", "best SSIM", "best PSNR", "adaptive SSIM"
    );
    for lambda in [0.0f32, 0.1, 1.0, 10.0] {
        let train_cfg = scale.train_config().with_lambda(lambda);
        let trainer = EnsemblerTrainer::new(case.config.clone(), train_cfg);
        let trained = trainer
            .train(n, case.selected, &data.train)
            .expect("training succeeds");
        let pipeline = trained.into_pipeline();
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .expect("evaluation succeeds");
        let per_net = attack_all_single_nets(&pipeline, &data.train, &private_images, &attack_cfg)
            .expect("attack succeeds");
        let best_ssim = per_net
            .iter()
            .map(|o| o.ssim)
            .fold(f32::NEG_INFINITY, f32::max);
        let best_psnr = per_net
            .iter()
            .map(|o| o.psnr)
            .fold(f32::NEG_INFINITY, f32::max);
        let adaptive = attack_adaptive(&pipeline, &data.train, &private_images, &attack_cfg)
            .expect("attack succeeds");
        println!(
            "{:<8.1} {:>10.3} {:>12.3} {:>12.2} {:>14.3}",
            lambda, acc, best_ssim, best_psnr, adaptive.ssim
        );
    }
}
