//! Ablation: how the ensemble size N and selection size P affect the secret
//! search space, the latency overhead and the classification accuracy.
//!
//! Usage: `cargo run -p ensembler-bench --bin ablation_ensemble --release`

use ensembler::{Defense, EnsemblerTrainer, EvalConfig, Selector};
use ensembler_bench::{DatasetCase, ExperimentScale};
use ensembler_latency::{estimate_ensembler, estimate_standard_ci, DeploymentProfile};
use ensembler_nn::models::ResNetConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    let deployment = DeploymentProfile::paper_testbed();
    let paper_config = ResNetConfig::paper_resnet18(10, 32, true);
    let standard = estimate_standard_ci(&paper_config, 128, &deployment);

    println!("== Ablation: ensemble size N and selection size P ==\n");
    println!(
        "{:<4} {:<4} {:>16} {:>18} {:>12}",
        "N", "P", "search space", "latency overhead", "accuracy"
    );

    let case = DatasetCase::cifar10(scale);
    let data = case.generate(19);
    let train_cfg = scale.train_config();

    for (n, p) in [(2usize, 1usize), (4, 2), (4, 3), (10, 4)] {
        // Secret-selection search space and analytic latency use the paper's
        // full-width model; accuracy is measured on the scaled-down one (and
        // only for configurations small enough for the quick scale).
        let selector = Selector::from_indices(n, (0..p).collect()).expect("valid selection");
        let latency = estimate_ensembler(&paper_config, 128, n, p, &deployment);
        let overhead = latency.overhead_vs(&standard) * 100.0;

        let accuracy = if n <= scale.ensemble_size() {
            let trainer = EnsemblerTrainer::new(case.config.clone(), train_cfg.clone());
            let trained = trainer.train(n, p, &data.train).expect("training succeeds");
            let pipeline = trained.into_pipeline();
            let acc = pipeline
                .evaluate(&data.test, &EvalConfig::default())
                .expect("evaluation succeeds");
            format!("{acc:.3}")
        } else {
            "(skipped)".to_string()
        };

        println!(
            "{:<4} {:<4} {:>16} {:>17.1}% {:>12}",
            n,
            p,
            selector.search_space(),
            overhead,
            accuracy
        );
    }
}
