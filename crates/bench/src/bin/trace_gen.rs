//! Deterministic trace synthesizer for the `ensembler-trace v1` format.
//!
//! Generates bursty, diurnal or steady arrival traces from a seed — the same
//! `(shape, seed)` always renders the byte-identical file, so a synthesized
//! trace can be committed and regenerated at will. With no flags it writes
//! exactly the committed example, `crates/bench/traces/bursty_demo.trace`
//! (the determinism suite pins that file against this generator).
//!
//! Usage:
//!   cargo run -p ensembler-bench --bin trace_gen [-- OPTIONS]
//!
//! Options:
//!   --shape NAME      `bursty` (default), `diurnal` or `steady`
//!   --seed N          synthesis seed (default `7`)
//!   --duration-s F    trace length in seconds (default `4`)
//!   --out PATH        write the trace to PATH (default: stdout)
//!
//! The per-shape rate parameters are fixed (bursty: 20 QPS base with 120 QPS
//! bursts for the first quarter of every second; diurnal: 5–60 QPS over a
//! 2 s period; steady: 45 QPS) so a trace is fully described by
//! `(shape, seed, duration)` — the spec `perf_report` records next to the
//! replay numbers.

use ensembler_bench::trace::{synthesize, TraceShape};

/// The fixed shape catalogue: rates are part of the trace spec, only the
/// duration is a knob.
fn shape_named(name: &str, duration_s: f64) -> TraceShape {
    match name {
        "bursty" => TraceShape::Bursty {
            base_qps: 20.0,
            burst_qps: 120.0,
            period_s: 1.0,
            burst_fraction: 0.25,
            duration_s,
        },
        "diurnal" => TraceShape::Diurnal {
            low_qps: 5.0,
            peak_qps: 60.0,
            period_s: 2.0,
            duration_s,
        },
        "steady" => TraceShape::Steady {
            qps: 45.0,
            duration_s,
        },
        other => panic!("unknown shape {other} (expected bursty, diurnal or steady)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shape_name = "bursty".to_string();
    let mut seed = 7u64;
    let mut duration_s = 4.0f64;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shape" => {
                i += 1;
                shape_name = args.get(i).expect("--shape needs a name").clone();
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .expect("--seed needs a number")
                    .parse()
                    .expect("--seed must be an unsigned integer");
            }
            "--duration-s" => {
                i += 1;
                duration_s = args
                    .get(i)
                    .expect("--duration-s needs a number")
                    .parse()
                    .expect("--duration-s must be a number");
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).expect("--out needs a path").clone());
            }
            other => panic!("unknown option {other} (see --shape, --seed, --duration-s, --out)"),
        }
        i += 1;
    }

    let shape = shape_named(&shape_name, duration_s);
    let trace = match synthesize(&shape, seed) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("trace_gen: {e}");
            std::process::exit(1);
        }
    };
    let text = trace.render();
    match out {
        Some(path) => {
            std::fs::write(&path, &text).expect("write trace file");
            eprintln!(
                "trace_gen: wrote {} entries ({} shape, seed {seed}, {duration_s} s, mean {:.1} qps) to {path}",
                trace.len(),
                shape_name,
                trace.mean_qps()
            );
        }
        None => print!("{text}"),
    }
}
