//! Machine-readable performance baseline: GEMM kernels, layer forwards,
//! end-to-end `Defense::predict` and loopback-TCP serving, written as a
//! `BENCH_PERF.json` report.
//!
//! Each GEMM shape is timed twice — once with the pre-PR serial scalar loops
//! (reproduced here verbatim as the `naive` reference) and once with the
//! blocked, parallel kernel the stack now uses — so a single run both
//! establishes the baseline and measures the speedup against it. Layer and
//! end-to-end timings cover the paths that inherit the kernel: conv/linear
//! forwards and the Ensembler pipeline's `predict`.
//!
//! Usage: `cargo run -p ensembler-bench --bin perf_report --release [-- out.json]`
//! Set `ENSEMBLER_SCALE=full` for more shapes and longer measurement budgets.
//! See `docs/PERFORMANCE.md` for how to read and compare the JSON output.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ensembler::{
    Defense, EnsemblerPipeline, EnsemblerTrainer, EvalConfig, QuantizedDefense, Selector,
    TrainConfig,
};
use ensembler_bench::load::{run_open_loop, LoadConfig, LoadRequest};
use ensembler_bench::stream::{run_streaming, StreamConfig};
use ensembler_bench::trace::{demo_bursty_trace, run_trace_replay, RequestKind};
use ensembler_bench::ExperimentScale;
use ensembler_data::SyntheticSpec;
use ensembler_latency::network_cost;
use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
use ensembler_nn::{Conv2d, FixedNoise, FusionConfig, Layer, Linear, Mode};
use ensembler_serve::registry::route_key;
use ensembler_serve::{
    demo_pipeline, AdmissionConfig, DefenseServer, ModelRegistry, RemoteDefense, ServerConfig,
    WIRE_OVERHEAD,
};
use ensembler_shard::{Placement, RouterConfig, ShardRouter};
use ensembler_tensor::gemm::{gemm_nn_with, Parallelism};
use ensembler_tensor::quant::qgemm_nn_with;
use ensembler_tensor::{JsonValue, Rng, Tensor};

/// The pre-PR `matmul` loop (serial, scalar, with the zero-skip), kept as the
/// fixed reference every future report compares against.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
    out
}

/// Runs `f` repeatedly until the budget is spent (at least 3 runs) and
/// returns the fastest wall-clock time in milliseconds.
fn time_ms<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up, untimed
    let mut best = f64::INFINITY;
    let mut spent = Duration::ZERO;
    let mut runs = 0usize;
    while runs < 3 || (spent < budget && runs < 64) {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        spent += elapsed;
        best = best.min(elapsed.as_secs_f64() * 1e3);
        runs += 1;
    }
    best
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    // Keep the report diff-friendly: microsecond precision is plenty.
    JsonValue::Number((v * 1e3).round() / 1e3)
}

/// Times one `[m,k] x [k,n]` product with both kernels.
fn gemm_case(op: &str, m: usize, k: usize, n: usize, budget: Duration) -> JsonValue {
    let mut rng = Rng::seed_from((m * 31 + k * 7 + n) as u64);
    let a = Tensor::from_fn(&[m, k], |_| rng.uniform(-1.0, 1.0));
    let b = Tensor::from_fn(&[k, n], |_| rng.uniform(-1.0, 1.0));

    let naive_ms = time_ms(budget, || naive_matmul(a.data(), b.data(), m, k, n));
    let blocked_ms = match op {
        "nn" => time_ms(budget, || a.matmul(&b)),
        "tn" => {
            let a_t = a.transpose2(); // [k,m] so a_t^T . b == a . b
            time_ms(budget, || a_t.matmul_tn(&b))
        }
        "nt" => {
            let b_t = b.transpose2(); // [n,k] so a . b_t^T == a . b
            time_ms(budget, || a.matmul_nt(&b_t))
        }
        other => unreachable!("unknown gemm op {other}"),
    };
    let flops = 2.0 * (m * k * n) as f64;
    println!(
        "  gemm_{op} {m}x{k}x{n}: naive {naive_ms:8.3} ms | blocked {blocked_ms:8.3} ms | {:5.2}x | {:6.2} GFLOP/s",
        naive_ms / blocked_ms,
        flops / (blocked_ms * 1e-3) / 1e9,
    );
    obj(vec![
        ("op", JsonValue::String(op.to_string())),
        ("m", JsonValue::Number(m as f64)),
        ("k", JsonValue::Number(k as f64)),
        ("n", JsonValue::Number(n as f64)),
        ("naive_ms", num(naive_ms)),
        ("blocked_ms", num(blocked_ms)),
        ("speedup", num(naive_ms / blocked_ms)),
        ("blocked_gflops", num(flops / (blocked_ms * 1e-3) / 1e9)),
    ])
}

/// Times the layer forwards that sit directly on the GEMM/im2col path.
fn layer_cases(budget: Duration) -> Vec<JsonValue> {
    let mut rng = Rng::seed_from(42);
    let mut out = Vec::new();

    let conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng);
    let conv_in = Tensor::from_fn(&[8, 16, 16, 16], |_| rng.uniform(-1.0, 1.0));
    let conv_ms = time_ms(budget, || conv.forward(&conv_in, Mode::Eval));
    println!("  conv2d 16->32 3x3 on [8,16,16,16]: {conv_ms:8.3} ms");
    out.push(obj(vec![
        ("layer", JsonValue::String("conv2d_16_32_k3".to_string())),
        ("input", JsonValue::String("[8,16,16,16] NCHW".to_string())),
        ("forward_ms", num(conv_ms)),
    ]));

    let linear = Linear::new(512, 256, &mut rng);
    let lin_in = Tensor::from_fn(&[64, 512], |_| rng.uniform(-1.0, 1.0));
    let lin_ms = time_ms(budget, || linear.forward(&lin_in, Mode::Eval));
    println!("  linear 512->256 on [64,512]:       {lin_ms:8.3} ms");
    out.push(obj(vec![
        ("layer", JsonValue::String("linear_512_256".to_string())),
        ("input", JsonValue::String("[64,512]".to_string())),
        ("forward_ms", num(lin_ms)),
    ]));

    out
}

/// Builds an untrained Ensembler pipeline (weights are irrelevant for
/// timing) and times `Defense::predict` on one mini-batch.
fn end_to_end_case(ensemble_size: usize, budget: Duration) -> JsonValue {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(7);
    let head = build_head(&config, &mut rng);
    let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
    let bodies = (0..ensemble_size)
        .map(|_| build_body(&config, &mut rng))
        .collect();
    let p = (ensemble_size / 2).max(1);
    let selector = Selector::random(ensemble_size, p, &mut rng).expect("valid selection");
    let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
    let pipeline = EnsemblerPipeline::new(config.clone(), head, noise, bodies, selector, tail)
        .expect("consistent pipeline");

    let batch = 32usize;
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );
    let ms = time_ms(budget, || pipeline.predict(&images).expect("predict"));
    println!(
        "  predict N={ensemble_size} P={p} batch={batch}:        {ms:8.3} ms  ({:7.1} images/s)",
        batch as f64 / (ms * 1e-3)
    );
    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(p as f64)),
        ("batch", JsonValue::Number(batch as f64)),
        ("predict_ms", num(ms)),
        ("images_per_s", num(batch as f64 / (ms * 1e-3))),
    ])
}

/// Serves the demo Ensembler on a loopback socket — twice over, as the
/// `"default"` (f32) and `"int8"` models of one multi-model registry — and
/// times batched `predict` with the `server_outputs` stage remote vs fully
/// in-process for each model, alongside the wire bytes each request moves
/// and the final [`ensembler_serve::ServerStats`] snapshot (the numbers
/// `docs/SERVING.md` plans capacity from).
fn serving_case(ensemble_size: usize, selected: usize, budget: Duration) -> JsonValue {
    let pipeline: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let int8: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(Arc::clone(&pipeline)));
    let config = ServerConfig::default();
    let registry = ModelRegistry::new("default", Arc::clone(&pipeline), config.engine)
        .and_then(|r| r.with_model("int8", Arc::clone(&int8), config.engine))
        .expect("valid registry");
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config)
        .expect("bind loopback server");

    let backbone = pipeline.config().clone();
    let batch = 32usize;
    let mut rng = Rng::seed_from(11);
    let images = Tensor::from_fn(
        &[
            batch,
            backbone.input_channels,
            backbone.image_size,
            backbone.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );
    let cost = network_cost(&backbone);

    let mut models = Vec::new();
    let mut default_summary = None;
    for (name, local) in [("default", &pipeline), ("int8", &int8)] {
        let remote = RemoteDefense::connect_model(Arc::clone(local), server.local_addr(), name)
            .expect("connect");
        let in_process_ms = time_ms(budget, || local.predict(&images).expect("predict"));
        let loopback_ms = time_ms(budget, || remote.predict(&images).expect("remote predict"));
        let (upload_bytes, return_bytes) = if remote.uses_quantized_frames() {
            (
                cost.upload_frame_bytes_q(batch as u64, &WIRE_OVERHEAD),
                cost.return_frame_bytes_q(batch as u64, ensemble_size as u64, &WIRE_OVERHEAD),
            )
        } else {
            (
                cost.upload_frame_bytes(batch as u64, &WIRE_OVERHEAD),
                cost.return_frame_bytes(batch as u64, ensemble_size as u64, &WIRE_OVERHEAD),
            )
        };
        println!(
            "  model {name}: in-process {in_process_ms:8.3} ms ({:7.1} img/s) | loopback TCP {loopback_ms:8.3} ms ({:7.1} img/s) | +{:5.3} ms wire ({} B up, {} B down)",
            batch as f64 / (in_process_ms * 1e-3),
            batch as f64 / (loopback_ms * 1e-3),
            loopback_ms - in_process_ms,
            upload_bytes,
            return_bytes,
        );
        let entry = obj(vec![
            ("model", JsonValue::String(name.to_string())),
            ("in_process_ms", num(in_process_ms)),
            ("loopback_tcp_ms", num(loopback_ms)),
            (
                "in_process_images_per_s",
                num(batch as f64 / (in_process_ms * 1e-3)),
            ),
            (
                "loopback_images_per_s",
                num(batch as f64 / (loopback_ms * 1e-3)),
            ),
            ("wire_overhead_ms", num(loopback_ms - in_process_ms)),
            ("upload_frame_bytes", JsonValue::Number(upload_bytes as f64)),
            ("return_frame_bytes", JsonValue::Number(return_bytes as f64)),
        ]);
        if name == "default" {
            default_summary = Some((in_process_ms, loopback_ms, upload_bytes, return_bytes));
        }
        models.push(entry);
    }

    let stats = server.stats();
    let per_model: Vec<JsonValue> = stats
        .per_model
        .iter()
        .map(|m| {
            obj(vec![
                ("model", JsonValue::String(m.model.clone())),
                (
                    "coalesced_requests",
                    JsonValue::Number(m.engine.requests_served as f64),
                ),
                (
                    "batches_executed",
                    JsonValue::Number(m.engine.batches_executed as f64),
                ),
                ("mean_batch_occupancy", num(m.engine.mean_batch_occupancy())),
                (
                    "queue_depth",
                    JsonValue::Number(m.engine.queue_depth as f64),
                ),
            ])
        })
        .collect();
    println!(
        "  server: {} connections, {} served, {} rejected over {} model(s)",
        stats.connections_accepted,
        stats.requests_served,
        stats.requests_rejected,
        stats.per_model.len(),
    );

    let (in_process_ms, loopback_ms, upload_bytes, return_bytes) =
        default_summary.expect("default model measured");
    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        ("batch", JsonValue::Number(batch as f64)),
        // Default-model summary, kept flat for cross-checkout diffs.
        ("in_process_ms", num(in_process_ms)),
        ("loopback_tcp_ms", num(loopback_ms)),
        (
            "in_process_images_per_s",
            num(batch as f64 / (in_process_ms * 1e-3)),
        ),
        (
            "loopback_images_per_s",
            num(batch as f64 / (loopback_ms * 1e-3)),
        ),
        ("wire_overhead_ms", num(loopback_ms - in_process_ms)),
        ("upload_frame_bytes", JsonValue::Number(upload_bytes as f64)),
        ("return_frame_bytes", JsonValue::Number(return_bytes as f64)),
        // The multi-model picture.
        ("models", JsonValue::Array(models)),
        (
            "server_stats",
            obj(vec![
                (
                    "connections_accepted",
                    JsonValue::Number(stats.connections_accepted as f64),
                ),
                (
                    "requests_served",
                    JsonValue::Number(stats.requests_served as f64),
                ),
                (
                    "requests_rejected",
                    JsonValue::Number(stats.requests_rejected as f64),
                ),
                ("errors_sent", JsonValue::Number(stats.errors_sent as f64)),
                ("per_model", JsonValue::Array(per_model)),
            ]),
        ),
    ])
}

/// Open-loop tail latency over one multiplexed protocol-v5 connection — the
/// `load_gen` binary's scenarios at report scale. Steady points hold a fixed
/// arrival schedule against a default-config server; the churn point dials a
/// fresh connection per request; the overload point saturates a deliberately
/// tight per-connection in-flight budget and checks every shed request was a
/// typed `Overloaded` rejection, never a transport failure.
fn load_case(ensemble_size: usize, selected: usize, scale: ExperimentScale) -> JsonValue {
    let (steady_requests, churn_requests, overload_requests) = match scale {
        ExperimentScale::Quick => (60usize, 20usize, 80usize),
        ExperimentScale::Full => (200, 50, 200),
    };
    let pipeline: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).expect("connect"),
    );
    let backbone = pipeline.config().clone();
    let image = Tensor::ones(&[
        1,
        backbone.input_channels,
        backbone.image_size,
        backbone.image_size,
    ]);
    // The invariant the tail numbers rest on.
    assert_eq!(
        remote.predict(&image).expect("remote predict"),
        pipeline.predict(&image).expect("in-process predict"),
        "multiplexed remote predict must be bit-identical to in-process"
    );
    let features = pipeline
        .client_features(&image)
        .expect("client features for load requests");

    let steady_request = |remote: &Arc<RemoteDefense>| -> LoadRequest {
        let remote = Arc::clone(remote);
        let features = features.clone();
        Arc::new(move || {
            remote
                .server_outputs_range(&features, 0, ensemble_size)
                .map(|_| ())
        })
    };

    let mut steady = Vec::new();
    for qps in [25.0, 100.0] {
        let report = run_open_loop(
            &steady_request(&remote),
            &LoadConfig {
                target_qps: qps,
                requests: steady_requests,
            },
        );
        println!("  steady {}", report.summary());
        steady.push(report.to_json());
    }

    let churn_addr = server.local_addr();
    let churn_pipeline = Arc::clone(&pipeline);
    let churn_features = features.clone();
    let churn: LoadRequest = Arc::new(move || {
        let conn = RemoteDefense::connect(Arc::clone(&churn_pipeline), churn_addr)?;
        conn.server_outputs_range(&churn_features, 0, ensemble_size)
            .map(|_| ())
    });
    let churn_report = run_open_loop(
        &churn,
        &LoadConfig {
            target_qps: 25.0,
            requests: churn_requests,
        },
    );
    println!("  churn  {}", churn_report.summary());

    let tight = ServerConfig {
        admission: AdmissionConfig {
            max_connection_inflight_requests: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let overload_server =
        DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", tight).expect("bind");
    let overload_remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), overload_server.local_addr())
            .expect("connect"),
    );
    let overload_report = run_open_loop(
        &steady_request(&overload_remote),
        &LoadConfig {
            target_qps: 1000.0,
            requests: overload_requests,
        },
    );
    println!("  overload {}", overload_report.summary());
    assert_eq!(
        overload_report.failed, 0,
        "overload must shed load with typed Overloaded frames, never transport failures"
    );
    assert_eq!(
        overload_report.ok + overload_report.rejected,
        overload_report.requests,
        "every overload request must be answered or typed-rejected"
    );

    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        (
            "protocol_version",
            JsonValue::Number(remote.negotiated_version() as f64),
        ),
        ("steady", JsonValue::Array(steady)),
        ("churn", churn_report.to_json()),
        ("overload", overload_report.to_json()),
    ])
}

/// Realistic load shapes (`docs/SERVING.md`'s scenario suite): streaming
/// sessions pushing frames at a fixed per-session cadence (stall and jitter
/// accounting on top of the tail), the committed bursty trace replayed
/// open-loop, and the client-side result cache driven over a
/// duplicate-heavy workload — with the hit path asserted bit-identical to
/// an uncached connection before any number is recorded.
fn scenarios_case(ensemble_size: usize, selected: usize, scale: ExperimentScale) -> JsonValue {
    let stream_config = match scale {
        ExperimentScale::Quick => StreamConfig {
            sessions: 4,
            frame_hz: 25.0,
            frames_per_session: 40,
        },
        ExperimentScale::Full => StreamConfig {
            sessions: 8,
            frame_hz: 40.0,
            frames_per_session: 120,
        },
    };
    let pipeline: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).expect("connect"),
    );
    let backbone = pipeline.config().clone();
    let image = Tensor::ones(&[
        1,
        backbone.input_channels,
        backbone.image_size,
        backbone.image_size,
    ]);
    let features = pipeline
        .client_features(&image)
        .expect("client features for scenario requests");

    // Streaming sessions over the one multiplexed connection.
    let stream_report = run_streaming(
        &|_session| {
            let remote = Arc::clone(&remote);
            let features = features.clone();
            Arc::new(move || {
                remote
                    .server_outputs_range(&features, 0, ensemble_size)
                    .map(|_| ())
            })
        },
        &stream_config,
    );
    println!("  {}", stream_report.summary());

    // The committed bursty trace, replayed open-loop. `predict` arrivals do
    // the full round trip (range exchange + local classification) so typed
    // rejections stay visible; `outputs` arrivals are the steady exchange.
    let trace = demo_bursty_trace();
    let outputs_request: LoadRequest = {
        let remote = Arc::clone(&remote);
        let features = features.clone();
        Arc::new(move || {
            remote
                .server_outputs_range(&features, 0, ensemble_size)
                .map(|_| ())
        })
    };
    let predict_request: LoadRequest = {
        let remote = Arc::clone(&remote);
        let features = features.clone();
        Arc::new(move || {
            let maps = remote.server_outputs_range(&features, 0, ensemble_size)?;
            remote
                .classify(&maps)
                .map(|_| ())
                .map_err(ensembler_serve::ServeError::Defense)
        })
    };
    let replay_report = run_trace_replay(&trace, |kind| match kind {
        RequestKind::Outputs => Arc::clone(&outputs_request),
        RequestKind::Predict => Arc::clone(&predict_request),
    });
    println!("  {}", replay_report.summary());
    assert_eq!(
        replay_report.failed, 0,
        "replay against an unloaded loopback server must not fail"
    );

    // Client result cache over a duplicate-heavy workload: 6 unique inputs
    // replayed for several rounds, cached vs uncached, bit-identical by
    // assertion before the counters are recorded.
    let cached = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())
        .expect("connect")
        .with_result_cache(32);
    let uncached =
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).expect("connect");
    let mut rng = Rng::seed_from(41);
    let unique: Vec<Tensor> = (0..6)
        .map(|_| {
            pipeline
                .client_features(&Tensor::from_fn(
                    &[
                        1,
                        backbone.input_channels,
                        backbone.image_size,
                        backbone.image_size,
                    ],
                    |_| rng.uniform(-1.0, 1.0),
                ))
                .expect("client features")
        })
        .collect();
    let rounds = 4usize;
    let cached_start = Instant::now();
    for _ in 0..rounds {
        for features in &unique {
            let hit = cached
                .server_outputs_range(features, 0, ensemble_size)
                .expect("cached exchange");
            let fresh = uncached
                .server_outputs_range(features, 0, ensemble_size)
                .expect("uncached exchange");
            assert_eq!(hit, fresh, "cache hit path must be bit-identical");
        }
    }
    let paired_wall_ms = cached_start.elapsed().as_secs_f64() * 1e3;
    let stats = cached.cache_stats().expect("cache enabled");
    println!("  {}", stats.summary());
    let lookups = (rounds * unique.len()) as u64;
    assert_eq!(stats.hits + stats.misses, lookups);
    assert_eq!(stats.misses, unique.len() as u64);

    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        ("streaming", stream_report.to_json()),
        ("bursty_trace_replay", replay_report.to_json()),
        (
            "client_cache",
            obj(vec![
                ("capacity", JsonValue::Number(stats.capacity as f64)),
                ("unique_inputs", JsonValue::Number(unique.len() as f64)),
                ("rounds", JsonValue::Number(rounds as f64)),
                ("hits", JsonValue::Number(stats.hits as f64)),
                ("misses", JsonValue::Number(stats.misses as f64)),
                ("hit_rate", num(stats.hit_rate())),
                ("evictions", JsonValue::Number(stats.evictions as f64)),
                ("paired_wall_ms", num(paired_wall_ms)),
                ("bit_identical_to_uncached", JsonValue::Bool(true)),
            ]),
        ),
    ])
}

/// The model-lifecycle promises, measured rather than asserted: how long a
/// hot swap stalls a connection hammering the server (the reload pause —
/// both the registry call itself and the worst inter-response gap the
/// client observes across the swap), and how closely the deterministic
/// canary split tracks the requested percentage. The lifecycle e2e suite
/// proves zero drops and bit-exact routing; this reports the numbers.
fn lifecycle_case(ensemble_size: usize, selected: usize, scale: ExperimentScale) -> JsonValue {
    let (hammer_requests, canary_requests) = match scale {
        ExperimentScale::Quick => (60usize, 120usize),
        ExperimentScale::Full => (160, 400),
    };
    let version_a: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 901).expect("valid demo pipeline"));
    let version_b: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 902).expect("valid demo pipeline"));
    let config = ServerConfig::default();
    let registry =
        ModelRegistry::new("default", Arc::clone(&version_a), config.engine).expect("registry");
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config).expect("bind");
    let registry = Arc::clone(server.registry());
    let remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&version_a), server.local_addr()).expect("connect"),
    );

    let backbone = version_a.config().clone();
    let mut rng = Rng::seed_from(907);
    let mut fresh_features = || {
        let image = Tensor::from_fn(
            &[
                1,
                backbone.input_channels,
                backbone.image_size,
                backbone.image_size,
            ],
            |_| rng.uniform(-1.0, 1.0),
        );
        version_a
            .client_features(&image)
            .expect("client features for lifecycle requests")
    };

    // Hot swap under load: one connection hammers sequential requests while
    // the registry swaps the slot mid-stream. Every response must match
    // exactly one version bit-for-bit, so drops and misroutes are impossible
    // to miss; the timing tells us what a reload costs a live client.
    let features = fresh_features();
    let expected_a = version_a.server_outputs(&features).expect("outputs A");
    let expected_b = version_b.server_outputs(&features).expect("outputs B");
    let served = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let remote = Arc::clone(&remote);
        let features = features.clone();
        let expected_a = expected_a.clone();
        let expected_b = expected_b.clone();
        let served = Arc::clone(&served);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut on_new: Vec<bool> = Vec::new();
            let mut max_gap_ms = 0.0f64;
            let mut last_done = Instant::now();
            while !stop.load(Ordering::Acquire) {
                let start = Instant::now();
                let out = remote
                    .server_outputs(&features)
                    .expect("requests never drop across a swap");
                let done = Instant::now();
                latencies_ms.push(done.duration_since(start).as_secs_f64() * 1e3);
                max_gap_ms = max_gap_ms.max(done.duration_since(last_done).as_secs_f64() * 1e3);
                last_done = done;
                let new = out == expected_b;
                assert!(
                    new || out == expected_a,
                    "every response must match exactly one version bit-for-bit"
                );
                on_new.push(new);
                served.fetch_add(1, Ordering::Release);
            }
            (latencies_ms, on_new, max_gap_ms)
        })
    };
    while served.load(Ordering::Acquire) < hammer_requests as u64 / 2 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let swap_start = Instant::now();
    registry
        .swap("default", "v2", Arc::clone(&version_b), config.engine)
        .expect("swap under load");
    let swap_call_ms = swap_start.elapsed().as_secs_f64() * 1e3;
    while served.load(Ordering::Acquire) < hammer_requests as u64 {
        std::thread::sleep(Duration::from_micros(200));
    }
    stop.store(true, Ordering::Release);
    let (latencies_ms, on_new, max_gap_ms) = hammer.join().expect("hammer thread");
    let served_new = on_new.iter().filter(|&&new| new).count();
    let served_old = on_new.len() - served_new;
    let max_request_ms = latencies_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    println!(
        "  hot swap: call {swap_call_ms:6.3} ms | worst gap {max_gap_ms:6.3} ms | {} on v0 + {} on v2, 0 dropped",
        served_old, served_new,
    );

    // Canary split: requested percent vs what the deterministic router
    // actually serves, cross-checked request by request against the
    // route-key mirror (a mismatch would be a routing bug, not noise).
    const PERCENT: u8 = 20;
    let version_c: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 903).expect("valid demo pipeline"));
    registry
        .set_canary(
            "default",
            "v3",
            PERCENT,
            Arc::clone(&version_c),
            config.engine,
        )
        .expect("set canary");
    let mut canary_served = 0usize;
    let mut routing_mismatches = 0usize;
    for _ in 0..canary_requests {
        let features = fresh_features();
        let out = remote.server_outputs(&features).expect("canary request");
        let on_canary = out == version_c.server_outputs(&features).expect("outputs C");
        if !on_canary {
            assert_eq!(
                out,
                version_b.server_outputs(&features).expect("outputs B"),
                "non-canary traffic must come from the primary, bit-for-bit"
            );
        }
        let key = route_key(
            features
                .data()
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes()),
        );
        if on_canary != (key % 100 < u64::from(PERCENT)) {
            routing_mismatches += 1;
        }
        if on_canary {
            canary_served += 1;
        }
    }
    assert_eq!(
        routing_mismatches, 0,
        "canary assignment must agree with the route-key mirror on every request"
    );
    let observed_percent = 100.0 * canary_served as f64 / canary_requests as f64;
    let promote_start = Instant::now();
    registry.promote("default").expect("promote");
    let promote_ms = promote_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "  canary: requested {PERCENT}% | observed {observed_percent:5.2}% over {canary_requests} requests (0 mirror mismatches) | promote {promote_ms:6.3} ms",
    );

    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        (
            "hot_swap",
            obj(vec![
                ("requests", JsonValue::Number(on_new.len() as f64)),
                ("served_old", JsonValue::Number(served_old as f64)),
                ("served_new", JsonValue::Number(served_new as f64)),
                ("dropped", JsonValue::Number(0.0)),
                ("swap_call_ms", num(swap_call_ms)),
                ("max_request_ms", num(max_request_ms)),
                ("max_gap_ms", num(max_gap_ms)),
            ]),
        ),
        (
            "canary",
            obj(vec![
                ("requested_percent", JsonValue::Number(f64::from(PERCENT))),
                ("requests", JsonValue::Number(canary_requests as f64)),
                ("canary_served", JsonValue::Number(canary_served as f64)),
                ("observed_percent", num(observed_percent)),
                (
                    "routing_mismatches",
                    JsonValue::Number(routing_mismatches as f64),
                ),
                ("promote_ms", num(promote_ms)),
            ]),
        ),
    ])
}

/// Times `Defense::predict` through a loopback [`ShardRouter`] over
/// `worker_count` range-serving workers, against the in-process baseline.
fn sharded_deployment_case(
    pipeline: &Arc<dyn Defense>,
    worker_count: usize,
    images: &Tensor,
    in_process_ms: f64,
    budget: Duration,
) -> JsonValue {
    let ensemble_size = pipeline.ensemble_size();
    let workers: Vec<DefenseServer> = (0..worker_count)
        .map(|_| {
            DefenseServer::bind(Arc::clone(pipeline), "127.0.0.1:0", ServerConfig::default())
                .expect("bind worker")
        })
        .collect();
    // Even tiling of 0..N over the workers (N divisible by worker_count for
    // every case this report runs).
    let span = ensemble_size / worker_count;
    let specs: Vec<String> = workers
        .iter()
        .enumerate()
        .map(|(k, w)| format!("{}={}..{}", w.local_addr(), k * span, (k + 1) * span))
        .collect();
    let placement = Placement::parse(&specs, ensemble_size).expect("valid placement");
    let router = ShardRouter::new(Arc::clone(pipeline), placement, RouterConfig::default())
        .expect("router over loopback workers");

    let batch = images.shape()[0];
    let sharded_ms = time_ms(budget, || router.predict(images).expect("sharded predict"));
    let shard_stats = router.shard_stats();
    let requests: u64 = shard_stats.iter().map(|s| s.requests).sum();
    let hedges: u64 = shard_stats.iter().map(|s| s.hedges_fired).sum();
    let flaps: u64 = shard_stats.iter().map(|s| s.health_flaps).sum();
    println!(
        "  {worker_count} worker(s): {sharded_ms:8.3} ms ({:7.1} img/s) | {:5.3} ms over in-process | {requests} range requests, {hedges} hedges, {flaps} flaps",
        batch as f64 / (sharded_ms * 1e-3),
        sharded_ms - in_process_ms,
    );
    obj(vec![
        ("workers", JsonValue::Number(worker_count as f64)),
        ("sharded_ms", num(sharded_ms)),
        (
            "sharded_images_per_s",
            num(batch as f64 / (sharded_ms * 1e-3)),
        ),
        ("scatter_overhead_ms", num(sharded_ms - in_process_ms)),
        ("range_requests", JsonValue::Number(requests as f64)),
        ("hedges_fired", JsonValue::Number(hedges as f64)),
        ("health_flaps", JsonValue::Number(flaps as f64)),
    ])
}

/// The scatter-gather serving tier (`crates/shard`): one process vs 2- and
/// 4-worker loopback deployments of the same pipeline, all bit-identical by
/// construction (the sharded e2e suite proves it; this measures the cost).
fn sharded_case(ensemble_size: usize, selected: usize, budget: Duration) -> JsonValue {
    let pipeline: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let config = pipeline.config().clone();
    let batch = 32usize;
    let mut rng = Rng::seed_from(29);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );
    let in_process_ms = time_ms(budget, || pipeline.predict(&images).expect("predict"));
    println!(
        "  1 process:   {in_process_ms:8.3} ms ({:7.1} img/s)",
        batch as f64 / (in_process_ms * 1e-3)
    );
    let deployments: Vec<JsonValue> = [2usize, 4]
        .iter()
        .map(|&workers| sharded_deployment_case(&pipeline, workers, &images, in_process_ms, budget))
        .collect();
    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        ("batch", JsonValue::Number(batch as f64)),
        ("in_process_ms", num(in_process_ms)),
        (
            "in_process_images_per_s",
            num(batch as f64 / (in_process_ms * 1e-3)),
        ),
        ("deployments", JsonValue::Array(deployments)),
    ])
}

/// Times one `[m,k] x [k,n]` product with the blocked f32 kernel and the
/// packed int8 kernel (`qgemm_nn`): GFLOP/s vs integer GOP/s on identical
/// shapes.
fn qgemm_case(m: usize, k: usize, n: usize, budget: Duration) -> JsonValue {
    let mut rng = Rng::seed_from((m * 13 + k * 5 + n) as u64);
    let a = Tensor::from_fn(&[m, k], |_| rng.uniform(-1.0, 1.0));
    let b = Tensor::from_fn(&[k, n], |_| rng.uniform(-1.0, 1.0));
    let aq: Vec<i8> = (0..m * k).map(|_| rng.below(255) as i8).collect();
    let bq: Vec<i8> = (0..k * n).map(|_| rng.below(255) as i8).collect();

    let f32_ms = time_ms(budget, || {
        gemm_nn_with(a.data(), b.data(), m, k, n, Parallelism::Serial)
    });
    let int8_ms = time_ms(budget, || {
        qgemm_nn_with(&aq, &bq, m, k, n, Parallelism::Serial)
    });
    let ops = 2.0 * (m * k * n) as f64;
    println!(
        "  qgemm {m}x{k}x{n}: f32 {:6.2} GFLOP/s | int8 {:6.2} GOP/s | {:4.2}x",
        ops / (f32_ms * 1e-3) / 1e9,
        ops / (int8_ms * 1e-3) / 1e9,
        f32_ms / int8_ms,
    );
    obj(vec![
        ("m", JsonValue::Number(m as f64)),
        ("k", JsonValue::Number(k as f64)),
        ("n", JsonValue::Number(n as f64)),
        ("f32_ms", num(f32_ms)),
        ("int8_ms", num(int8_ms)),
        ("f32_gflops", num(ops / (f32_ms * 1e-3) / 1e9)),
        ("int8_gops", num(ops / (int8_ms * 1e-3) / 1e9)),
        ("speedup", num(f32_ms / int8_ms)),
    ])
}

/// Times `Defense::predict` at both precisions on the demo Ensembler and
/// measures the int8 accuracy delta on a trained pipeline — the acceptance
/// numbers of the quantized backend.
fn quantized_case(ensemble_size: usize, selected: usize, budget: Duration) -> JsonValue {
    let pipeline: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let int8 = QuantizedDefense::quantize(Arc::clone(&pipeline));
    let config = pipeline.config().clone();
    let batch = 32usize;
    let mut rng = Rng::seed_from(23);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );
    let f32_ms = time_ms(budget, || pipeline.predict(&images).expect("predict"));
    let int8_ms = time_ms(budget, || int8.predict(&images).expect("int8 predict"));

    // Accuracy delta on a trained pipeline over a dataset where one point is
    // two samples (the conformance suite enforces the one-point budget).
    let data = SyntheticSpec::tiny_for_tests()
        .with_samples(48, 200)
        .generate(31);
    let trainer = EnsemblerTrainer::new(
        ResNetConfig::tiny_for_tests(),
        TrainConfig::fast_for_tests(),
    );
    let trained: Arc<dyn Defense> = Arc::new(
        trainer
            .train(3, 2, &data.train)
            .expect("training succeeds")
            .into_pipeline(),
    );
    let trained_int8 = QuantizedDefense::quantize(Arc::clone(&trained));
    let eval = EvalConfig::default();
    let f32_acc = trained.evaluate(&data.test, &eval).expect("f32 eval");
    let int8_acc = trained_int8.evaluate(&data.test, &eval).expect("int8 eval");

    println!(
        "  predict N={ensemble_size} P={selected} batch={batch}: f32 {f32_ms:8.3} ms ({:7.1} img/s) | int8 {int8_ms:8.3} ms ({:7.1} img/s) | {:4.2}x",
        batch as f64 / (f32_ms * 1e-3),
        batch as f64 / (int8_ms * 1e-3),
        f32_ms / int8_ms,
    );
    println!(
        "  accuracy (trained tiny ensembler, {} samples): f32 {:.4} | int8 {:.4} | delta {:+.4}",
        data.test.len(),
        f32_acc,
        int8_acc,
        int8_acc - f32_acc,
    );
    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        ("batch", JsonValue::Number(batch as f64)),
        ("f32_predict_ms", num(f32_ms)),
        ("int8_predict_ms", num(int8_ms)),
        ("f32_images_per_s", num(batch as f64 / (f32_ms * 1e-3))),
        ("int8_images_per_s", num(batch as f64 / (int8_ms * 1e-3))),
        ("int8_speedup", num(f32_ms / int8_ms)),
        ("f32_accuracy", num(f32_acc as f64)),
        ("int8_accuracy", num(int8_acc as f64)),
        ("accuracy_delta", num((int8_acc - f32_acc) as f64)),
    ])
}

/// The compiled fused forward path (graph IR + fusion passes in
/// `crates/nn/src/compiler.rs`) vs the eager per-layer forwards, end to end
/// at both precisions. `bit_exact` fuses relu into the GEMM epilogues (and
/// is asserted bit-identical to eager before timing); `full` additionally
/// folds conv+bn and is compared under the conformance suite's tolerance
/// instead.
fn fusion_case(ensemble_size: usize, selected: usize, budget: Duration) -> JsonValue {
    let fused = demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline");
    let eager = demo_pipeline(ensemble_size, selected, 7)
        .expect("valid demo pipeline")
        .with_fusion(FusionConfig::none());
    let folded = demo_pipeline(ensemble_size, selected, 7)
        .expect("valid demo pipeline")
        .with_fusion(FusionConfig::full());
    let config = fused.config().clone();
    let batch = 32usize;
    let mut rng = Rng::seed_from(37);
    let images = Tensor::from_fn(
        &[
            batch,
            config.input_channels,
            config.image_size,
            config.image_size,
        ],
        |_| rng.uniform(-1.0, 1.0),
    );
    // The invariant the timings rest on: the default (bit_exact) plans are
    // indistinguishable from the eager forwards.
    assert_eq!(
        fused.predict(&images).expect("fused predict"),
        eager.predict(&images).expect("eager predict"),
        "bit_exact fused plans must reproduce the eager forward bit-for-bit"
    );
    let eager_ms = time_ms(budget, || eager.predict(&images).expect("eager predict"));
    let fused_ms = time_ms(budget, || fused.predict(&images).expect("fused predict"));
    let folded_ms = time_ms(budget, || folded.predict(&images).expect("folded predict"));

    // Int8: the quantized wrapper compiles its own fused plans over the
    // folded-or-not bodies; eager is the per-stage QSequential forward.
    let inner: Arc<dyn Defense> =
        Arc::new(demo_pipeline(ensemble_size, selected, 7).expect("valid demo pipeline"));
    let int8_fused = QuantizedDefense::quantize(Arc::clone(&inner));
    let int8_eager = QuantizedDefense::quantize_with(Arc::clone(&inner), FusionConfig::none());
    // Folding happens *before* quantization, so the folded int8 plan both
    // skips the bn passes and exposes conv+relu adjacencies to the epilogue.
    let int8_folded = QuantizedDefense::quantize_with(Arc::clone(&inner), FusionConfig::full());
    assert_eq!(
        int8_fused.predict(&images).expect("fused int8 predict"),
        int8_eager.predict(&images).expect("eager int8 predict"),
        "bit_exact fused int8 plans must reproduce the eager quantized forward"
    );
    let int8_eager_ms = time_ms(budget, || {
        int8_eager.predict(&images).expect("eager int8 predict")
    });
    let int8_fused_ms = time_ms(budget, || {
        int8_fused.predict(&images).expect("fused int8 predict")
    });
    let int8_folded_ms = time_ms(budget, || {
        int8_folded.predict(&images).expect("folded int8 predict")
    });

    println!(
        "  f32  N={ensemble_size} P={selected} batch={batch}: eager {eager_ms:8.3} ms | fused {fused_ms:8.3} ms ({:4.2}x) | folded {folded_ms:8.3} ms ({:4.2}x)",
        eager_ms / fused_ms,
        eager_ms / folded_ms,
    );
    println!(
        "  int8 N={ensemble_size} P={selected} batch={batch}: eager {int8_eager_ms:8.3} ms | fused {int8_fused_ms:8.3} ms ({:4.2}x) | folded {int8_folded_ms:8.3} ms ({:4.2}x)",
        int8_eager_ms / int8_fused_ms,
        int8_eager_ms / int8_folded_ms,
    );
    obj(vec![
        ("ensemble_size", JsonValue::Number(ensemble_size as f64)),
        ("selected", JsonValue::Number(selected as f64)),
        ("batch", JsonValue::Number(batch as f64)),
        ("f32_eager_ms", num(eager_ms)),
        ("f32_fused_ms", num(fused_ms)),
        ("f32_folded_ms", num(folded_ms)),
        ("f32_fused_speedup", num(eager_ms / fused_ms)),
        ("f32_folded_speedup", num(eager_ms / folded_ms)),
        (
            "f32_fused_images_per_s",
            num(batch as f64 / (fused_ms * 1e-3)),
        ),
        ("int8_eager_ms", num(int8_eager_ms)),
        ("int8_fused_ms", num(int8_fused_ms)),
        ("int8_folded_ms", num(int8_folded_ms)),
        ("int8_fused_speedup", num(int8_eager_ms / int8_fused_ms)),
        ("int8_folded_speedup", num(int8_eager_ms / int8_folded_ms)),
        (
            "int8_fused_images_per_s",
            num(batch as f64 / (int8_fused_ms * 1e-3)),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PERF.json".to_string());
    let scale = ExperimentScale::from_env();
    let budget = match scale {
        ExperimentScale::Quick => Duration::from_millis(300),
        ExperimentScale::Full => Duration::from_millis(1500),
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let epoch_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    println!("perf_report ({scale:?}, {cores} cores) -> {out_path}");

    println!("GEMM (naive = pre-blocked-kernel serial loops):");
    let mut gemm = Vec::new();
    for size in [64usize, 128, 256, 512] {
        gemm.push(gemm_case("nn", size, size, size, budget));
    }
    gemm.push(gemm_case("tn", 256, 256, 256, budget));
    gemm.push(gemm_case("nt", 256, 256, 256, budget));
    // Skinny shapes from the serving path: batch x features x classes.
    gemm.push(gemm_case("nn", 32, 512, 10, budget));
    if scale == ExperimentScale::Full {
        gemm.push(gemm_case("nn", 768, 768, 768, budget));
    }

    println!("Layer forwards:");
    let layers = layer_cases(budget);

    println!("End-to-end inference:");
    let e2e = end_to_end_case(4, budget);

    println!("Fused compiled plans vs eager layer forwards (crates/nn compiler):");
    let fusion = fusion_case(4, 2, budget);

    println!("Loopback-TCP serving (crates/serve, two-model registry) vs in-process:");
    let serving = serving_case(4, 2, budget);

    println!("Open-loop load (one multiplexed v5 connection, tail latency):");
    let load = load_case(4, 2, scale);

    println!("Realistic load shapes (streaming sessions, trace replay, client cache):");
    let scenarios = scenarios_case(4, 2, scale);

    println!("Model lifecycle (hot-swap reload pause + canary split, live registry):");
    let lifecycle = lifecycle_case(4, 2, scale);

    println!("Scatter-gather sharded serving (crates/shard) vs one process:");
    let sharded = sharded_case(4, 2, budget);

    println!("Int8 quantized backend (qgemm + QuantizedDefense):");
    let mut qgemm = Vec::new();
    for size in [256usize, 512] {
        qgemm.push(qgemm_case(size, size, size, budget));
    }
    // The skinny im2col shapes of the quantized serving path.
    qgemm.push(qgemm_case(2048, 144, 16, budget));
    qgemm.push(qgemm_case(512, 288, 32, budget));
    let quantized_predict = quantized_case(4, 2, budget);
    let quantized = obj(vec![
        ("qgemm", JsonValue::Array(qgemm)),
        ("predict", quantized_predict),
    ]);

    let report = obj(vec![
        ("report", JsonValue::String("perf_report".to_string())),
        ("version", JsonValue::Number(9.0)),
        ("unix_time_s", JsonValue::Number(epoch_s as f64)),
        ("cores", JsonValue::Number(cores as f64)),
        ("scale", JsonValue::String(format!("{scale:?}"))),
        ("gemm", JsonValue::Array(gemm)),
        ("layers", JsonValue::Array(layers)),
        ("end_to_end", e2e),
        ("fusion", fusion),
        ("serving", serving),
        ("load", load),
        ("scenarios", scenarios),
        ("lifecycle", lifecycle),
        ("sharded", sharded),
        ("quantized", quantized),
    ]);

    std::fs::write(&out_path, report.render_pretty()).expect("write perf report");
    println!("wrote {out_path}");
}
