//! Regenerates Table II of the Ensembler paper: every defence mechanism
//! evaluated on the CIFAR-10 stand-in.
//!
//! Usage: `cargo run -p ensembler-bench --bin table2 --release`
//! Set `ENSEMBLER_SCALE=full` for the larger configuration.

use ensembler_bench::{format_defense_table, run_defense_mechanisms, ExperimentScale};

fn main() -> Result<(), ensembler::EnsemblerError> {
    let scale = ExperimentScale::from_env();
    println!("== Table II: defence mechanisms on CIFAR-10 ({scale:?} scale) ==\n");
    let result = run_defense_mechanisms(scale)?;
    println!("{}", format_defense_table(&result));
    println!("JSON: {}", result.to_json().render_pretty());
    Ok(())
}
