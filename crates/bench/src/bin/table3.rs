//! Regenerates Table III of the Ensembler paper: time taken to run a batch of
//! 128 images through the different deployment strategies.
//!
//! Usage: `cargo run -p ensembler-bench --bin table3 --release`

use ensembler_latency::{
    estimate_ensembler, estimate_stamp, estimate_standard_ci, DeploymentProfile, LatencyBreakdown,
};
use ensembler_nn::models::ResNetConfig;

fn row(name: &str, t: &LatencyBreakdown) -> String {
    format!(
        "{:<14} {:>8.2} {:>8.2} {:>15.2} {:>8.2}",
        name,
        t.client_s,
        t.server_s,
        t.communication_s,
        t.total()
    )
}

fn main() {
    // The latency model uses the paper's full-width ResNet-18 and batch size.
    let config = ResNetConfig::paper_resnet18(10, 32, true);
    let deployment = DeploymentProfile::paper_testbed();
    let batch = 128;

    let standard = estimate_standard_ci(&config, batch, &deployment);
    let ensembler = estimate_ensembler(&config, batch, 10, 4, &deployment);
    let stamp = estimate_stamp(&config, batch, &deployment);

    println!("== Table III: seconds per 128-image ResNet-18 batch ==\n");
    println!(
        "{:<14} {:>8} {:>8} {:>15} {:>8}",
        "Name", "Client", "Server", "Communication", "Total"
    );
    println!("{}", row("Standard CI", &standard));
    println!("{}", row("Ensembler", &ensembler));
    println!("{}", row("STAMP", &stamp));
    println!(
        "\nEnsembler overhead vs standard CI: {:.1}%",
        ensembler.overhead_vs(&standard) * 100.0
    );
    println!(
        "STAMP slowdown vs standard CI: {:.1}x",
        stamp.total() / standard.total()
    );
}
