//! Regenerates Table I of the Ensembler paper: defence quality of the Single
//! baseline and Ensembler across the three (synthetic stand-in) datasets.
//!
//! Usage: `cargo run -p ensembler-bench --bin table1 --release`
//! Set `ENSEMBLER_SCALE=full` for the larger configuration.

use ensembler_bench::{format_defense_table, run_defense_quality, DatasetCase, ExperimentScale};
use ensembler_tensor::JsonValue;

fn main() -> Result<(), ensembler::EnsemblerError> {
    let scale = ExperimentScale::from_env();
    println!("== Table I: defence quality across datasets ({scale:?} scale) ==\n");
    let mut results = Vec::new();
    for case in DatasetCase::paper_cases(scale) {
        eprintln!("running {} ...", case.name);
        let result = run_defense_quality(&case, scale)?;
        println!("{}", format_defense_table(&result));
        results.push(result);
    }
    let json = JsonValue::Array(results.iter().map(|r| r.to_json()).collect());
    println!("JSON: {}", json.render_pretty());
    Ok(())
}
