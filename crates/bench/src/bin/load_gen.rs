//! Open-loop load generator against a loopback serving deployment:
//! tail-latency (p50/p99/p999) at configurable target request rates, plus
//! connection-churn and admission-overload scenarios, all over one
//! multiplexed protocol-v5 connection. `--stream` switches to stateful
//! streaming sessions (per-session cadence, jitter and stall accounting) and
//! `--replay` drives the deployment through a committed arrival trace.
//!
//! The server, the client and the load all live in this one process, so the
//! numbers isolate the serving stack (framing, multiplexing, admission,
//! coalescing) from network hardware — the same methodology as the
//! `serving` section of `BENCH_PERF.json`, extended from closed-loop means
//! to open-loop tails.
//!
//! Usage:
//!   cargo run -p ensembler-bench --bin load_gen --release [-- OPTIONS]
//!
//! Options:
//!   --qps LIST        comma-separated target rates (default `25,100`)
//!   --requests N      requests per steady scenario (default `120`)
//!   --stream          streaming sessions instead of the default scenarios
//!   --replay PATH     replay an `ensembler-trace v1` file instead
//!   --cache N         enable the client result cache with capacity N
//!   --smoke           tiny run (low rates, few requests) for CI
//!
//! Before any load runs, the harness proves the invariant the numbers rest
//! on: a multiplexed remote `predict` is bit-identical to the in-process
//! pipeline. See `docs/SERVING.md` for how to read the output.

use ensembler::Defense;
use ensembler_bench::load::{run_open_loop, LoadConfig, LoadRequest};
use ensembler_bench::stream::{run_streaming, StreamConfig};
use ensembler_bench::trace::{run_trace_replay, RequestKind, Trace};
use ensembler_serve::{
    demo_pipeline, AdmissionConfig, DefenseServer, RemoteDefense, ServeError, ServerConfig,
};
use ensembler_tensor::Tensor;
use std::sync::Arc;

/// Builds the per-request closure: one single-image `server_outputs` range
/// exchange (batch 1, so concurrent requests coalesce in the server's
/// engine), shared by every in-flight request on the multiplexed connection.
fn steady_request(remote: Arc<RemoteDefense>, features: Tensor, n: usize) -> LoadRequest {
    Arc::new(move || remote.server_outputs_range(&features, 0, n).map(|_| ()))
}

/// Builds a full predict round trip that keeps rejections typed: the range
/// exchange travels the wire (where `Overloaded` frames surface as
/// `ServeError::Remote`), classification runs locally.
fn predict_request(remote: Arc<RemoteDefense>, features: Tensor, n: usize) -> LoadRequest {
    Arc::new(move || {
        let maps = remote.server_outputs_range(&features, 0, n)?;
        remote
            .classify(&maps)
            .map(|_| ())
            .map_err(ServeError::Defense)
    })
}

/// Prints the client cache counters when the `--cache` flag enabled them.
fn print_cache_stats(remote: &RemoteDefense) {
    if let Some(stats) = remote.cache_stats() {
        println!("  {}", stats.summary());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut qps_points: Vec<f64> = vec![25.0, 100.0];
    let mut requests = 120usize;
    let mut smoke = false;
    let mut stream_mode = false;
    let mut replay_path: Option<String> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--qps" => {
                i += 1;
                qps_points = args
                    .get(i)
                    .expect("--qps needs a comma-separated list")
                    .split(',')
                    .map(|v| v.parse().expect("--qps values must be numbers"))
                    .collect();
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .expect("--requests needs a number")
                    .parse()
                    .expect("--requests must be a number");
            }
            "--stream" => stream_mode = true,
            "--replay" => {
                i += 1;
                replay_path = Some(args.get(i).expect("--replay needs a path").clone());
            }
            "--cache" => {
                i += 1;
                cache_capacity = Some(
                    args.get(i)
                        .expect("--cache needs a capacity")
                        .parse()
                        .expect("--cache must be a number"),
                );
            }
            "--smoke" => smoke = true,
            other => panic!(
                "unknown option {other} (see --qps, --requests, --stream, --replay, --cache, --smoke)"
            ),
        }
        i += 1;
    }
    if smoke {
        qps_points = vec![10.0, 40.0];
        requests = 20;
    }

    let (n, p) = (4usize, 2usize);
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, 7).expect("demo pipeline"));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let mut client =
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).expect("connect");
    if let Some(capacity) = cache_capacity {
        client = client.with_result_cache(capacity);
    }
    let remote = Arc::new(client);
    println!(
        "load_gen: N={n} P={p} server {} (protocol v{}{})",
        server.local_addr(),
        remote.negotiated_version(),
        if cache_capacity.is_some() {
            ", client cache on"
        } else {
            ""
        }
    );

    // The invariant every number below rests on: the multiplexed remote is
    // bit-identical to the in-process pipeline.
    let image = Tensor::ones(&[1, 3, 16, 16]);
    assert_eq!(
        remote.predict(&image).expect("remote predict"),
        pipeline.predict(&image).expect("in-process predict"),
        "multiplexed remote predict must be bit-identical to in-process"
    );
    println!("  bit-exactness: remote predict == in-process predict");
    let features = pipeline
        .client_features(&image)
        .expect("client features for the load requests");

    if stream_mode {
        let config = if smoke {
            StreamConfig {
                sessions: 3,
                frame_hz: 20.0,
                frames_per_session: 20,
            }
        } else {
            StreamConfig {
                sessions: 8,
                frame_hz: 40.0,
                frames_per_session: 120,
            }
        };
        println!("streaming sessions (one shared multiplexed connection, open-loop per session):");
        let report = run_streaming(
            &|_session| steady_request(Arc::clone(&remote), features.clone(), n),
            &config,
        );
        println!("  {}", report.summary());
        for session in &report.per_session {
            println!(
                "    session {:2}: {:3} ok | p50 {:8.3} ms | max {:8.3} ms | {} stalls | jitter mean {:6.3} ms",
                session.session, session.ok, session.p50_ms, session.max_ms, session.stalls,
                session.jitter_mean_ms
            );
        }
        print_cache_stats(&remote);
        return;
    }

    if let Some(path) = replay_path {
        let trace = match Trace::load(std::path::Path::new(&path)) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("load_gen: cannot replay {path}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "trace replay ({path}: {} arrivals, mean {:.1} qps, peak-1s {:.1} qps):",
            trace.len(),
            trace.mean_qps(),
            trace.peak_qps(std::time::Duration::from_secs(1))
        );
        let outputs = steady_request(Arc::clone(&remote), features.clone(), n);
        let predict = predict_request(Arc::clone(&remote), features.clone(), n);
        let report = run_trace_replay(&trace, |kind| match kind {
            RequestKind::Outputs => Arc::clone(&outputs),
            RequestKind::Predict => Arc::clone(&predict),
        });
        println!("  {}", report.summary());
        for tally in &report.per_kind {
            println!(
                "    {:8}: {:4} issued, {} ok, {} rejected, {} failed",
                tally.kind.as_str(),
                tally.issued,
                tally.ok,
                tally.rejected,
                tally.failed
            );
        }
        print_cache_stats(&remote);
        assert_eq!(
            report.failed, 0,
            "replay against an unloaded loopback server must not fail"
        );
        return;
    }

    println!("steady open-loop (one multiplexed connection, batch-1 requests):");
    for &qps in &qps_points {
        let request = steady_request(Arc::clone(&remote), features.clone(), n);
        let report = run_open_loop(
            &request,
            &LoadConfig {
                target_qps: qps,
                requests,
            },
        );
        println!("  {}", report.summary());
    }

    println!("connection churn (dial + one request + hang up, per request):");
    let churn_addr = server.local_addr();
    let churn_pipeline = Arc::clone(&pipeline);
    let churn_features = features.clone();
    let churn: LoadRequest = Arc::new(move || {
        let conn = RemoteDefense::connect(Arc::clone(&churn_pipeline), churn_addr)?;
        conn.server_outputs_range(&churn_features, 0, n).map(|_| ())
    });
    let churn_report = run_open_loop(
        &churn,
        &LoadConfig {
            target_qps: if smoke { 10.0 } else { 25.0 },
            requests: if smoke { 10 } else { 50 },
        },
    );
    println!("  {}", churn_report.summary());

    println!("overload (per-connection in-flight budget 2, deliberately saturated):");
    let tight = ServerConfig {
        admission: AdmissionConfig {
            max_connection_inflight_requests: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let overload_server =
        DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", tight).expect("bind");
    let overload_remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), overload_server.local_addr())
            .expect("connect"),
    );
    let overload = steady_request(Arc::clone(&overload_remote), features, n);
    let overload_report = run_open_loop(
        &overload,
        &LoadConfig {
            target_qps: if smoke { 500.0 } else { 1000.0 },
            requests: if smoke { 40 } else { 200 },
        },
    );
    println!("  {}", overload_report.summary());
    println!("  {}", overload_report.outcome_line());
    let stats = overload_server.stats();
    println!(
        "  admission: {} served, {} rejected (typed Overloaded), {} in flight after drain",
        stats.requests_served, stats.requests_rejected, stats.inflight_requests
    );
    print_cache_stats(&remote);
    assert_eq!(
        overload_report.failed, 0,
        "rejections must be typed Overloaded frames, never transport failures"
    );
    assert_eq!(
        overload_report.ok + overload_report.rejected,
        overload_report.requests,
        "every request must be answered or typed-rejected"
    );
}
