//! Open-loop load generator against a loopback serving deployment:
//! tail-latency (p50/p99/p999) at configurable target request rates, plus
//! connection-churn and admission-overload scenarios, all over one
//! multiplexed protocol-v5 connection.
//!
//! The server, the client and the load all live in this one process, so the
//! numbers isolate the serving stack (framing, multiplexing, admission,
//! coalescing) from network hardware — the same methodology as the
//! `serving` section of `BENCH_PERF.json`, extended from closed-loop means
//! to open-loop tails.
//!
//! Usage:
//!   cargo run -p ensembler-bench --bin load_gen --release [-- OPTIONS]
//!
//! Options:
//!   --qps LIST        comma-separated target rates (default `25,100`)
//!   --requests N      requests per steady scenario (default `120`)
//!   --smoke           tiny run (low rates, few requests) for CI
//!
//! Before any load runs, the harness proves the invariant the numbers rest
//! on: a multiplexed remote `predict` is bit-identical to the in-process
//! pipeline. See `docs/SERVING.md` for how to read the output.

use ensembler::Defense;
use ensembler_bench::load::{run_open_loop, LoadConfig, LoadRequest};
use ensembler_serve::{demo_pipeline, AdmissionConfig, DefenseServer, RemoteDefense, ServerConfig};
use ensembler_tensor::Tensor;
use std::sync::Arc;

/// Builds the per-request closure: one single-image `server_outputs` range
/// exchange (batch 1, so concurrent requests coalesce in the server's
/// engine), shared by every in-flight request on the multiplexed connection.
fn steady_request(remote: Arc<RemoteDefense>, features: Tensor, n: usize) -> LoadRequest {
    Arc::new(move || remote.server_outputs_range(&features, 0, n).map(|_| ()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut qps_points: Vec<f64> = vec![25.0, 100.0];
    let mut requests = 120usize;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--qps" => {
                i += 1;
                qps_points = args
                    .get(i)
                    .expect("--qps needs a comma-separated list")
                    .split(',')
                    .map(|v| v.parse().expect("--qps values must be numbers"))
                    .collect();
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .expect("--requests needs a number")
                    .parse()
                    .expect("--requests must be a number");
            }
            "--smoke" => smoke = true,
            other => panic!("unknown option {other} (see --qps, --requests, --smoke)"),
        }
        i += 1;
    }
    if smoke {
        qps_points = vec![10.0, 40.0];
        requests = 20;
    }

    let (n, p) = (4usize, 2usize);
    let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, 7).expect("demo pipeline"));
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr()).expect("connect"),
    );
    println!(
        "load_gen: N={n} P={p} server {} (protocol v{})",
        server.local_addr(),
        remote.negotiated_version()
    );

    // The invariant every number below rests on: the multiplexed remote is
    // bit-identical to the in-process pipeline.
    let image = Tensor::ones(&[1, 3, 16, 16]);
    assert_eq!(
        remote.predict(&image).expect("remote predict"),
        pipeline.predict(&image).expect("in-process predict"),
        "multiplexed remote predict must be bit-identical to in-process"
    );
    println!("  bit-exactness: remote predict == in-process predict");
    let features = pipeline
        .client_features(&image)
        .expect("client features for the load requests");

    println!("steady open-loop (one multiplexed connection, batch-1 requests):");
    for &qps in &qps_points {
        let request = steady_request(Arc::clone(&remote), features.clone(), n);
        let report = run_open_loop(
            &request,
            &LoadConfig {
                target_qps: qps,
                requests,
            },
        );
        println!("  {}", report.summary());
    }

    println!("connection churn (dial + one request + hang up, per request):");
    let churn_addr = server.local_addr();
    let churn_pipeline = Arc::clone(&pipeline);
    let churn_features = features.clone();
    let churn: LoadRequest = Arc::new(move || {
        let conn = RemoteDefense::connect(Arc::clone(&churn_pipeline), churn_addr)?;
        conn.server_outputs_range(&churn_features, 0, n).map(|_| ())
    });
    let churn_report = run_open_loop(
        &churn,
        &LoadConfig {
            target_qps: if smoke { 10.0 } else { 25.0 },
            requests: if smoke { 10 } else { 50 },
        },
    );
    println!("  {}", churn_report.summary());

    println!("overload (per-connection in-flight budget 2, deliberately saturated):");
    let tight = ServerConfig {
        admission: AdmissionConfig {
            max_connection_inflight_requests: 2,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    };
    let overload_server =
        DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", tight).expect("bind");
    let overload_remote = Arc::new(
        RemoteDefense::connect(Arc::clone(&pipeline), overload_server.local_addr())
            .expect("connect"),
    );
    let overload = steady_request(Arc::clone(&overload_remote), features, n);
    let overload_report = run_open_loop(
        &overload,
        &LoadConfig {
            target_qps: if smoke { 500.0 } else { 1000.0 },
            requests: if smoke { 40 } else { 200 },
        },
    );
    println!("  {}", overload_report.summary());
    let stats = overload_server.stats();
    println!(
        "  admission: {} served, {} rejected (typed Overloaded), {} in flight after drain",
        stats.requests_served, stats.requests_rejected, stats.inflight_requests
    );
    assert_eq!(
        overload_report.failed, 0,
        "rejections must be typed Overloaded frames, never transport failures"
    );
    assert_eq!(
        overload_report.ok + overload_report.rejected,
        overload_report.requests,
        "every request must be answered or typed-rejected"
    );
}
