//! Open-loop load generation against a serving deployment.
//!
//! An *open-loop* generator fires requests on a fixed wall-clock schedule
//! derived from a target request rate, whether or not earlier requests have
//! completed — unlike a closed loop (issue, wait, issue), whose measured
//! latency silently flattens under overload because a slow server throttles
//! its own load. Open-loop tail latencies (p99, p999) are the numbers a
//! capacity plan actually needs, which is why this harness backs both the
//! `load_gen` binary and the `load` section of `BENCH_PERF.json`.
//!
//! The arrival schedule is deterministic — request `k` of a run at `q` QPS
//! is due exactly `k / q` seconds after the start, no Poisson jitter — so
//! two runs of the same scenario issue identical request sequences and the
//! only nondeterminism left in a report is the machine's own timing.
//!
//! Every request outcome is classified with the protocol's typed errors:
//! completions, typed `Overloaded` rejections (the admission budgets doing
//! their job — counted separately, never conflated with failures), and
//! transport failures.

use ensembler_serve::{ErrorCode, ServeError};
use ensembler_tensor::JsonValue;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One request against the deployment under load: the closure runs on its
/// own thread at its scheduled arrival time, and its typed result is
/// classified into the [`LoadReport`].
pub type LoadRequest = Arc<dyn Fn() -> Result<(), ServeError> + Send + Sync>;

/// The three outcome classes every harness in this crate tallies: completed,
/// shed by admission control with a typed `Overloaded` frame, or failed any
/// other way. One classification function serves the open-loop, streaming
/// and trace-replay harnesses so their counts always mean the same thing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request completed successfully.
    Ok,
    /// The server refused it with a typed `Overloaded` frame — load
    /// shedding, not a failure.
    Rejected,
    /// Anything else: transport, protocol or inference errors.
    Failed,
}

/// Classifies one request result into its [`Outcome`] class.
pub fn classify_outcome(result: &Result<(), ServeError>) -> Outcome {
    match result {
        Ok(()) => Outcome::Ok,
        Err(ServeError::Remote(wire)) if wire.code == ErrorCode::Overloaded => Outcome::Rejected,
        Err(_) => Outcome::Failed,
    }
}

/// Shape of one open-loop load scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Arrival rate the generator holds, in requests per second. Request
    /// `k` is issued exactly `k / target_qps` seconds after the run starts.
    pub target_qps: f64,
    /// Total requests in the run.
    pub requests: usize,
}

/// What one open-loop run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// The arrival rate the schedule aimed for.
    pub target_qps: f64,
    /// Requests issued.
    pub requests: usize,
    /// Requests that completed successfully.
    pub ok: usize,
    /// Requests the server refused with a typed `Overloaded` frame — the
    /// admission budgets shedding load, not a failure.
    pub rejected: usize,
    /// Requests that failed any other way (transport, protocol, inference).
    pub failed: usize,
    /// Completions per second actually achieved over the whole run
    /// (successful requests / wall-clock duration).
    pub achieved_qps: f64,
    /// Median latency of successful requests, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency of successful requests, in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency of successful requests, in milliseconds.
    pub p999_ms: f64,
    /// Slowest successful request, in milliseconds.
    pub max_ms: f64,
}

impl LoadReport {
    /// JSON representation, one object per scenario in `BENCH_PERF.json`'s
    /// `load` section.
    pub fn to_json(&self) -> JsonValue {
        let num = |v: f64| JsonValue::Number((v * 1e3).round() / 1e3);
        JsonValue::Object(vec![
            ("target_qps".to_string(), num(self.target_qps)),
            (
                "requests".to_string(),
                JsonValue::Number(self.requests as f64),
            ),
            ("ok".to_string(), JsonValue::Number(self.ok as f64)),
            (
                "rejected".to_string(),
                JsonValue::Number(self.rejected as f64),
            ),
            ("failed".to_string(), JsonValue::Number(self.failed as f64)),
            ("achieved_qps".to_string(), num(self.achieved_qps)),
            ("p50_ms".to_string(), num(self.p50_ms)),
            ("p99_ms".to_string(), num(self.p99_ms)),
            ("p999_ms".to_string(), num(self.p999_ms)),
            ("max_ms".to_string(), num(self.max_ms)),
        ])
    }

    /// One-line human summary, as printed by `load_gen`.
    pub fn summary(&self) -> String {
        format!(
            "qps {:7.1} -> {:7.1} | {} ok, {} rejected, {} failed | p50 {:8.3} ms | p99 {:8.3} ms | p999 {:8.3} ms",
            self.target_qps,
            self.achieved_qps,
            self.ok,
            self.rejected,
            self.failed,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
        )
    }

    /// Per-outcome-class breakdown with percentages — the line the overload
    /// scenario prints so CI logs show the shed fraction at a glance, e.g.
    /// `outcomes: 37/200 ok (18.5%), 163/200 rejected (81.5%), 0/200 failed
    /// (0.0%) -> 81.5% shed`.
    pub fn outcome_line(&self) -> String {
        let pct = |n: usize| {
            if self.requests == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.requests as f64
            }
        };
        format!(
            "outcomes: {}/{} ok ({:.1}%), {}/{} rejected ({:.1}%), {}/{} failed ({:.1}%) -> {:.1}% shed",
            self.ok,
            self.requests,
            pct(self.ok),
            self.rejected,
            self.requests,
            pct(self.rejected),
            self.failed,
            self.requests,
            pct(self.failed),
            pct(self.rejected),
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted latency list (`q` in
/// `0.0..=1.0`); `0.0` for an empty list.
pub fn percentile_ms(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// Runs one open-loop scenario: issues `config.requests` requests on the
/// fixed `config.target_qps` arrival schedule, each on its own thread (so a
/// slow response never delays a later arrival), waits for every response and
/// classifies the outcomes.
///
/// The request closure is shared by every in-flight call — against a
/// protocol-v5 [`ensembler_serve::RemoteDefense`] all of them pipeline onto
/// the one multiplexed connection, which is exactly the deployment shape
/// this harness exists to measure.
pub fn run_open_loop(request: &LoadRequest, config: &LoadConfig) -> LoadReport {
    assert!(
        config.target_qps > 0.0 && config.requests > 0,
        "a load scenario needs a positive rate and at least one request"
    );
    let interval = Duration::from_secs_f64(1.0 / config.target_qps);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.requests);
    for k in 0..config.requests {
        let due = start + interval * k as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let request = Arc::clone(request);
        handles.push(std::thread::spawn(move || {
            let issued = Instant::now();
            let result = request();
            (issued.elapsed(), result)
        }));
    }

    let mut ok = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(config.requests);
    for handle in handles {
        let Ok((elapsed, result)) = handle.join() else {
            failed += 1;
            continue;
        };
        match classify_outcome(&result) {
            Outcome::Ok => {
                ok += 1;
                latencies_ms.push(elapsed.as_secs_f64() * 1e3);
            }
            Outcome::Rejected => rejected += 1,
            Outcome::Failed => failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);
    LoadReport {
        target_qps: config.target_qps,
        requests: config.requests,
        ok,
        rejected,
        failed,
        achieved_qps: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        p999_ms: percentile_ms(&latencies_ms, 0.999),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensembler_serve::WireError;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_ms(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 0.999), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[7.0], 0.999), 7.0);
    }

    #[test]
    fn open_loop_classifies_typed_outcomes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let request: LoadRequest = Arc::new(move || {
            // Deterministic outcome mix: reject every 3rd call, fail every
            // 5th of the rest, complete the remainder.
            match seen.fetch_add(1, Ordering::SeqCst) % 5 {
                0 | 1 | 3 => Ok(()),
                2 => Err(ServeError::Remote(WireError {
                    code: ErrorCode::Overloaded,
                    message: "budget".to_string(),
                })),
                _ => Err(ServeError::Protocol("boom".to_string())),
            }
        });
        let report = run_open_loop(
            &request,
            &LoadConfig {
                target_qps: 2000.0,
                requests: 50,
            },
        );
        assert_eq!(report.requests, 50);
        assert_eq!(report.ok, 30);
        assert_eq!(report.rejected, 10);
        assert_eq!(report.failed, 10);
        assert_eq!(report.ok + report.rejected + report.failed, 50);
        assert!(report.p50_ms <= report.p99_ms && report.p99_ms <= report.p999_ms);
        assert!(report.p999_ms <= report.max_ms);
        let json = report.to_json();
        let rendered = json.render_pretty();
        assert!(rendered.contains("p999_ms"));
        assert!(rendered.contains("rejected"));
    }

    #[test]
    fn outcome_line_shows_per_class_percentages() {
        let report = LoadReport {
            target_qps: 1000.0,
            requests: 200,
            ok: 37,
            rejected: 163,
            failed: 0,
            achieved_qps: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            p999_ms: 0.0,
            max_ms: 0.0,
        };
        let line = report.outcome_line();
        assert!(line.contains("37/200 ok (18.5%)"), "{line}");
        assert!(line.contains("163/200 rejected (81.5%)"), "{line}");
        assert!(line.contains("0/200 failed (0.0%)"), "{line}");
        assert!(line.ends_with("81.5% shed"), "{line}");
    }

    #[test]
    fn classification_is_shared_and_typed() {
        assert_eq!(classify_outcome(&Ok(())), Outcome::Ok);
        assert_eq!(
            classify_outcome(&Err(ServeError::Remote(WireError {
                code: ErrorCode::Overloaded,
                message: "budget".to_string(),
            }))),
            Outcome::Rejected
        );
        assert_eq!(
            classify_outcome(&Err(ServeError::Remote(WireError {
                code: ErrorCode::Internal,
                message: "boom".to_string(),
            }))),
            Outcome::Failed
        );
        assert_eq!(
            classify_outcome(&Err(ServeError::Protocol("garbage".to_string()))),
            Outcome::Failed
        );
    }

    #[test]
    fn arrival_schedule_is_open_loop() {
        // 20 requests at 1 kHz: the schedule spans ~19 ms even though each
        // request returns instantly; a closed loop would finish far sooner
        // than the schedule, an open loop cannot.
        let request: LoadRequest = Arc::new(|| Ok(()));
        let start = Instant::now();
        let report = run_open_loop(
            &request,
            &LoadConfig {
                target_qps: 1000.0,
                requests: 20,
            },
        );
        assert!(start.elapsed() >= Duration::from_millis(19));
        assert_eq!(report.ok, 20);
        assert!(report.achieved_qps <= 1100.0);
    }
}
