//! Benchmarks of the full Ensembler inference pipeline: how the end-to-end
//! cost scales with the ensemble size N (the empirical counterpart of the
//! Table III latency model and the Sec. III-D complexity analysis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ensembler::{Defense, EnsemblerPipeline, Selector};
use ensembler_nn::models::{build_body, build_head, build_tail, ResNetConfig};
use ensembler_nn::{FixedNoise, Sequential};
use ensembler_tensor::{Rng, Tensor};

fn make_pipeline(n: usize, p: usize) -> EnsemblerPipeline {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(7);
    let head = build_head(&config, &mut rng);
    let noise = FixedNoise::new(&config.head_output_shape(), 0.1, &mut rng);
    let bodies: Vec<Sequential> = (0..n).map(|_| build_body(&config, &mut rng)).collect();
    let selector = Selector::random(n, p, &mut rng).expect("valid selection");
    let tail = build_tail(&config, p * config.body_output_features(), &mut rng);
    EnsemblerPipeline::new(config, head, noise, bodies, selector, tail)
        .expect("consistent pipeline")
}

fn bench_ensemble_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensembler_predict");
    group.sample_size(20);
    for &n in &[1usize, 2, 4, 8] {
        let p = (n / 2).max(1);
        let pipeline = make_pipeline(n, p);
        let images = Tensor::from_fn(&[8, 3, 16, 16], |i| ((i % 255) as f32) / 255.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(pipeline.predict(&images).expect("prediction succeeds")));
        });
    }
    group.finish();
}

fn bench_selector_overhead(c: &mut Criterion) {
    let selector = Selector::from_indices(10, vec![1, 3, 5, 7]).expect("valid selection");
    let maps: Vec<Tensor> = (0..10).map(|i| Tensor::full(&[32, 32], i as f32)).collect();
    c.bench_function("selector_combine_10nets_batch32", |b| {
        b.iter(|| black_box(selector.combine(&maps).expect("combination succeeds")));
    });
}

criterion_group!(benches, bench_ensemble_scaling, bench_selector_overhead);
criterion_main!(benches);
