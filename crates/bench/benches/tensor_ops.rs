//! Microbenchmarks of the tensor kernel operations that dominate training
//! and inference cost (supports the latency analysis of Table III).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ensembler_tensor::{im2col, Conv2dGeometry, Rng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &size in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::from_fn(&[size, size], |_| rng.uniform(-1.0, 1.0));
        let b = Tensor::from_fn(&[size, size], |_| rng.uniform(-1.0, 1.0));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    for &hw in &[8usize, 16, 32] {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::from_fn(&[4, 16, hw, hw], |_| rng.uniform(-1.0, 1.0));
        let geom = Conv2dGeometry::new(3, 1, 1);
        group.bench_with_input(BenchmarkId::from_parameter(hw), &hw, |bench, _| {
            bench.iter(|| black_box(im2col(&x, geom)));
        });
    }
    group.finish();
}

fn bench_channel_concat(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let maps: Vec<Tensor> = (0..4)
        .map(|_| Tensor::from_fn(&[8, 16, 8, 8], |_| rng.uniform(-1.0, 1.0)))
        .collect();
    c.bench_function("concat_channels_4x16ch", |bench| {
        bench.iter(|| {
            let refs: Vec<&Tensor> = maps.iter().collect();
            black_box(Tensor::concat_channels(&refs))
        });
    });
}

criterion_group!(benches, bench_matmul, bench_im2col, bench_channel_concat);
criterion_main!(benches);
