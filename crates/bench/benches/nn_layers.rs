//! Microbenchmarks of the neural-network layers: forward and backward cost of
//! the pieces the client and the server execute in the split pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ensembler_nn::models::{build_body, build_head, ResNetConfig};
use ensembler_nn::{Conv2d, Layer, Mode};
use ensembler_tensor::{Rng, Tensor};

fn bench_conv_forward_backward(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let mut conv = Conv2d::new(16, 16, 3, 1, 1, &mut rng);
    let x = Tensor::from_fn(&[8, 16, 16, 16], |_| rng.uniform(-1.0, 1.0));
    c.bench_function("conv2d_forward_16ch_16x16", |b| {
        b.iter(|| black_box(conv.forward(&x, Mode::Eval)));
    });
    let y = conv.forward_cached(&x, Mode::Eval);
    let grad = Tensor::ones(y.shape());
    c.bench_function("conv2d_backward_16ch_16x16", |b| {
        b.iter(|| black_box(conv.backward(&grad)));
    });
}

fn bench_client_head(c: &mut Criterion) {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(1);
    let head = build_head(&config, &mut rng);
    let images = Tensor::from_fn(&[8, 3, 16, 16], |_| rng.next_f32());
    c.bench_function("client_head_forward_batch8", |b| {
        b.iter(|| black_box(head.forward(&images, Mode::Eval)));
    });
}

fn bench_server_body(c: &mut Criterion) {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(2);
    let body = build_body(&config, &mut rng);
    let shape = config.head_output_shape();
    let features = Tensor::from_fn(&[8, shape[0], shape[1], shape[2]], |_| rng.next_f32());
    c.bench_function("server_body_forward_batch8", |b| {
        b.iter(|| black_box(body.forward(&features, Mode::Eval)));
    });
}

criterion_group!(
    benches,
    bench_conv_forward_backward,
    bench_client_head,
    bench_server_body
);
criterion_main!(benches);
