//! Microbenchmark of the stage-3 regularizer: the cost of evaluating the
//! cosine-similarity penalty (Eq. 3) as the number of reference heads grows.
//! This is the per-step price of the λ ablation studied by the
//! `ablation_lambda` binary.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ensembler_nn::cosine_penalty;
use ensembler_tensor::{Rng, Tensor};

fn bench_cosine_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_penalty_references");
    let mut rng = Rng::seed_from(0);
    let features = Tensor::from_fn(&[16, 1024], |_| rng.uniform(-1.0, 1.0));
    for &n_refs in &[1usize, 4, 10] {
        let references: Vec<Tensor> = (0..n_refs)
            .map(|_| Tensor::from_fn(&[16, 1024], |_| rng.uniform(-1.0, 1.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_refs), &n_refs, |b, _| {
            b.iter(|| black_box(cosine_penalty(&features, &references, 1.0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cosine_penalty);
criterion_main!(benches);
