//! Benchmarks of the attacker-side cost: one shadow-training step and one
//! decoder reconstruction step, the building blocks of the MIA whose
//! brute-force repetition the paper's security argument (Sec. III-D) counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ensembler_attack::{Decoder, ShadowNetwork};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::{Mode, MseLoss};
use ensembler_tensor::{Rng, Tensor};

fn bench_shadow_head_forward(c: &mut Criterion) {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(0);
    let mut shadow = ShadowNetwork::new(&config, config.body_output_features(), &mut rng);
    let images = Tensor::from_fn(&[8, 3, 16, 16], |_| rng.next_f32());
    c.bench_function("shadow_head_forward_batch8", |b| {
        b.iter(|| black_box(shadow.head_forward(&images, Mode::Eval)));
    });
}

fn bench_decoder_step(c: &mut Criterion) {
    let config = ResNetConfig::cifar10_like();
    let mut rng = Rng::seed_from(1);
    let mut decoder = Decoder::new(&config, &mut rng);
    let shape = config.head_output_shape();
    let features = Tensor::from_fn(&[8, shape[0], shape[1], shape[2]], |_| rng.next_f32());
    let targets = Tensor::from_fn(&[8, 3, 16, 16], |_| rng.next_f32());
    let mse = MseLoss::new();
    c.bench_function("decoder_train_step_batch8", |b| {
        b.iter(|| {
            let recon = decoder.forward(&features, Mode::Train);
            let loss = mse.compute(&recon, &targets);
            let _ = decoder.backward(&loss.grad);
            decoder.zero_grad();
            black_box(loss.loss)
        });
    });
    c.bench_function("decoder_reconstruct_batch8", |b| {
        b.iter(|| black_box(decoder.forward(&features, Mode::Eval)));
    });
}

criterion_group!(benches, bench_shadow_head_forward, bench_decoder_step);
criterion_main!(benches);
