//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` crate cannot be fetched. This crate implements the small
//! API subset the `ensembler-bench` benchmarks use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `black_box`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-of-timed-iterations measurement. Swap the path dependency for the
//! registry crate to get real statistics; no bench source changes needed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one case of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives the timed iterations of a single benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            mean_ns: 0.0,
        }
    }

    /// Runs `f` repeatedly and records the mean wall-clock time per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: one untimed call.
        black_box(f());
        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        let budget = Duration::from_millis(200);
        while iters < self.samples || total < budget {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
            iters += 1;
            if iters >= self.samples * 64 {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.mean_ns;
    if ns >= 1e9 {
        println!("{name:<48} {:>10.3} s", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<48} {:>10.3} ms", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<48} {:>10.3} us", ns / 1e3);
    } else {
        println!("{name:<48} {ns:>10.1} ns");
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one parameterised benchmark case.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher::new(samples);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
