//! Scatter-gather sharded serving for the Ensembler reproduction.
//!
//! The paper's server cost is `O(N)` in the ensemble size; one process
//! parallelises that across cores, this crate parallelises it across
//! *machines*. A [`ShardRouter`] implements [`ensembler::Defense`] by
//! fanning each `server_outputs` call out over the protocol-v4 sub-range
//! requests of `ensembler-serve` to a pool of ordinary
//! [`ensembler_serve::DefenseServer`] workers — each holding the full
//! checkpoint but evaluating only the body slice `lo..hi` a [`Placement`]
//! assigns it — then merging the partial maps back into the full `N`-map
//! answer, bit-identical to a single-process evaluation.
//!
//! The router half of the deployment:
//!
//! * [`Placement`] / [`ShardSpec`] — which worker serves which body range,
//!   and whether its leg of the fan-out travels in `f32` or int8 frames;
//!   parsed from repeatable `--shard HOST:PORT=lo..hi[,int8]` flags or a
//!   placement file of the same one-shard-per-line syntax;
//! * [`ShardRouter`] — the fan-out/merge [`ensembler::Defense`], with a
//!   background health monitor (periodic probe, mark-unhealthy, reconnect
//!   with capped exponential backoff) and hedged retries (a duplicate
//!   request on a fresh connection once the primary stays silent past
//!   [`RouterConfig::hedge_after`], first response wins);
//! * [`ShardError`] — typed degradation: a worker that cannot serve its
//!   range fails the whole request with
//!   [`ShardError::ShardUnavailable`], never a silent partial sum;
//! * the `shard_router` binary — serves the merged pipeline behind a
//!   normal [`ensembler_serve::DefenseServer`], so clients connect to a
//!   router exactly as they would to a single worker.
//!
//! `docs/SERVING.md` covers topology, placement files and tuning.
//!
//! # Examples
//!
//! A two-worker loopback deployment in one process:
//!
//! ```
//! use ensembler::Defense;
//! use ensembler_serve::{demo_pipeline, DefenseServer, ServerConfig};
//! use ensembler_shard::{Placement, RouterConfig, ShardRouter};
//! use ensembler_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(4, 2, 11)?);
//! let a = DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", ServerConfig::default())?;
//! let b = DefenseServer::bind(Arc::clone(&pipeline), "127.0.0.1:0", ServerConfig::default())?;
//!
//! let placement = Placement::parse(
//!     &[
//!         format!("{}=0..2", a.local_addr()),
//!         format!("{}=2..4", b.local_addr()),
//!     ],
//!     pipeline.ensemble_size(),
//! )?;
//! let router = ShardRouter::new(Arc::clone(&pipeline), placement, RouterConfig::default())?;
//!
//! let images = Tensor::ones(&[1, 3, 16, 16]);
//! // The scatter-gather answer is bit-identical to the single process.
//! assert_eq!(router.predict(&images)?, pipeline.predict(&images)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ensembler::{Defense, EnsemblerError, Precision, QuantizedDefense};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_serve::{RemoteDefense, ServeError, ShardStats};
use ensembler_tensor::{QTensorBatch, Tensor};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything that can go wrong assembling or running a sharded deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard flag, placement file or placement as a whole is invalid
    /// (syntax errors, ranges that overlap or leave bodies unserved).
    Placement(String),
    /// A worker could not serve its body range: it is down, in reconnect
    /// backoff, or failed the request and its immediate retry. The router
    /// fails the whole request with this typed error — it never returns a
    /// silent partial merge.
    ShardUnavailable {
        /// The worker's address, as given in the placement.
        addr: String,
        /// First body index the worker was responsible for (inclusive).
        lo: usize,
        /// One past the last body index the worker was responsible for.
        hi: usize,
        /// What actually failed (connect error, wire error, retry error).
        reason: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Placement(msg) => write!(f, "invalid placement: {msg}"),
            ShardError::ShardUnavailable {
                addr,
                lo,
                hi,
                reason,
            } => write!(
                f,
                "shard {addr} serving bodies {lo}..{hi} is unavailable: {reason}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ShardError> for EnsemblerError {
    /// Collapses a sharding failure into [`EnsemblerError::Transport`] so
    /// [`ShardRouter`] can satisfy the [`Defense`] signatures.
    fn from(e: ShardError) -> Self {
        EnsemblerError::Transport(e.to_string())
    }
}

/// One worker of a [`Placement`]: an address, the body range it serves, and
/// the wire precision of its leg of the fan-out.
///
/// # Examples
///
/// ```
/// use ensembler_shard::ShardSpec;
///
/// let spec = ShardSpec::parse("10.0.0.7:7000=4..8,int8")?;
/// assert_eq!(spec.addr, "10.0.0.7:7000");
/// assert_eq!((spec.lo, spec.hi), (4, 8));
/// assert!(spec.quantized);
/// assert_eq!(spec.to_string(), "10.0.0.7:7000=4..8,int8");
/// # Ok::<(), ensembler_shard::ShardError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// `HOST:PORT` of the worker's `DefenseServer`.
    pub addr: String,
    /// First server body index placed on this worker (inclusive).
    pub lo: usize,
    /// One past the last server body index placed on this worker.
    pub hi: usize,
    /// Ship this worker int8 (quantized) frames instead of `f32` ones. The
    /// worker must then serve the int8 pipeline
    /// ([`ensembler::QuantizedDefense`]) of the same checkpoint.
    pub quantized: bool,
}

impl ShardSpec {
    /// Parses the `HOST:PORT=lo..hi[,int8]` syntax of the `--shard` flag
    /// (and of placement-file lines).
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Placement`] describing the malformed part.
    pub fn parse(spec: &str) -> Result<Self, ShardError> {
        let bad = |why: &str| ShardError::Placement(format!("{why} in shard spec {spec:?}"));
        let (addr, rest) = spec
            .split_once('=')
            .ok_or_else(|| bad("expected HOST:PORT=lo..hi[,int8]"))?;
        if addr.is_empty() || !addr.contains(':') {
            return Err(bad("worker address must look like HOST:PORT"));
        }
        let mut parts = rest.split(',');
        let range = parts.next().unwrap_or("");
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| bad("body range must look like lo..hi"))?;
        let lo: usize = lo.parse().map_err(|_| bad("range start is not a number"))?;
        let hi: usize = hi.parse().map_err(|_| bad("range end is not a number"))?;
        if lo >= hi {
            return Err(bad("body range is empty"));
        }
        let mut quantized = false;
        for option in parts {
            match option.trim() {
                "int8" => quantized = true,
                other => {
                    return Err(ShardError::Placement(format!(
                        "unknown shard option {other:?} in {spec:?} (supported: int8)"
                    )))
                }
            }
        }
        Ok(Self {
            addr: addr.to_string(),
            lo,
            hi,
            quantized,
        })
    }
}

impl std::fmt::Display for ShardSpec {
    /// The flag syntax back, so `parse` ∘ `to_string` is the identity.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}..{}", self.addr, self.lo, self.hi)?;
        if self.quantized {
            write!(f, ",int8")?;
        }
        Ok(())
    }
}

/// A complete assignment of an `N`-body ensemble to workers: every body
/// index in `0..N` is served by exactly one shard.
///
/// Shards are kept sorted by their range, so merged partial results
/// concatenate back into index order.
///
/// # Examples
///
/// ```
/// use ensembler_shard::Placement;
///
/// let placement = Placement::parse(
///     &["127.0.0.1:7001=0..2".to_string(), "127.0.0.1:7002=2..4,int8".to_string()],
///     4,
/// )?;
/// assert_eq!(placement.shards().len(), 2);
///
/// // The file form round-trips (one shard per line, same syntax).
/// let text = placement.to_config_string();
/// assert_eq!(Placement::from_config_str(&text, 4)?, placement);
///
/// // Gaps and overlaps are rejected.
/// assert!(Placement::parse(&["127.0.0.1:7001=0..3".to_string()], 4).is_err());
/// # Ok::<(), ensembler_shard::ShardError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    shards: Vec<ShardSpec>,
    ensemble_size: usize,
}

impl Placement {
    /// Validates that `shards` tile `0..ensemble_size` exactly — no body
    /// unserved, none served twice.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Placement`] naming the first gap or overlap.
    pub fn new(mut shards: Vec<ShardSpec>, ensemble_size: usize) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::Placement(
                "a placement needs at least one shard".to_string(),
            ));
        }
        shards.sort_by_key(|s| (s.lo, s.hi));
        let mut covered = 0usize;
        for shard in &shards {
            if shard.lo != covered {
                return Err(ShardError::Placement(format!(
                    "bodies {covered}..{} are {} (shard {} starts at {})",
                    shard.lo.max(covered),
                    if shard.lo > covered {
                        "unserved"
                    } else {
                        "served twice"
                    },
                    shard.addr,
                    shard.lo
                )));
            }
            covered = shard.hi;
        }
        if covered != ensemble_size {
            return Err(ShardError::Placement(format!(
                "shards cover bodies 0..{covered} of an ensemble of {ensemble_size}"
            )));
        }
        Ok(Self {
            shards,
            ensemble_size,
        })
    }

    /// Parses one `HOST:PORT=lo..hi[,int8]` spec per element (the
    /// repeatable `--shard` flag) and validates the tiling.
    ///
    /// # Errors
    ///
    /// As for [`ShardSpec::parse`] and [`Placement::new`].
    pub fn parse(specs: &[String], ensemble_size: usize) -> Result<Self, ShardError> {
        let shards = specs
            .iter()
            .map(|spec| ShardSpec::parse(spec))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(shards, ensemble_size)
    }

    /// Parses a placement file: one shard spec per line, blank lines and
    /// `#` comments ignored.
    ///
    /// # Errors
    ///
    /// As for [`Placement::parse`].
    pub fn from_config_str(text: &str, ensemble_size: usize) -> Result<Self, ShardError> {
        let shards = text
            .lines()
            .map(str::trim)
            .filter(|line| !line.is_empty() && !line.starts_with('#'))
            .map(ShardSpec::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(shards, ensemble_size)
    }

    /// Serializes to the placement-file form [`Placement::from_config_str`]
    /// parses: one shard per line in range order.
    pub fn to_config_string(&self) -> String {
        let mut text = String::from("# shard placement: HOST:PORT=lo..hi[,int8]\n");
        for shard in &self.shards {
            text.push_str(&shard.to_string());
            text.push('\n');
        }
        text
    }

    /// The shards, sorted by body range.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The ensemble size `N` this placement tiles.
    pub fn ensemble_size(&self) -> usize {
        self.ensemble_size
    }
}

/// Tuning knobs of a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Fire a hedged duplicate request on a *fresh* connection once a
    /// worker's primary exchange has stayed silent this long; the first
    /// response wins and the loser's connection is dropped (so its late
    /// response can never be read as the answer to a later request).
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// How often the background health monitor probes every worker (a TCP
    /// connect) and repopulates dropped connections. `None` disables the
    /// monitor; workers are then only probed by the requests themselves.
    pub health_interval: Option<Duration>,
    /// First delay after a failed connect before that worker may be dialed
    /// again; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Cap on the doubling reconnect backoff.
    pub max_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            hedge_after: Some(Duration::from_millis(500)),
            health_interval: Some(Duration::from_secs(5)),
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// Reconnect throttling for one worker: the next allowed dial time and the
/// current (doubling) delay.
#[derive(Debug)]
struct Backoff {
    delay: Duration,
    blocked_until: Option<Instant>,
}

/// The router's view of one worker: its spec, the local replica its
/// connections validate against, the pooled (shared, multiplexed)
/// connection, and counters.
struct WorkerLink {
    spec: ShardSpec,
    replica: Arc<dyn Defense>,
    conn: Mutex<Option<Arc<RemoteDefense>>>,
    healthy: AtomicBool,
    requests: AtomicU64,
    hedges: AtomicU64,
    flaps: AtomicU64,
    backoff: Mutex<Backoff>,
}

impl std::fmt::Debug for WorkerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerLink")
            .field("spec", &self.spec)
            .field("healthy", &self.healthy.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WorkerLink {
    fn new(spec: ShardSpec, replica: Arc<dyn Defense>, config: &RouterConfig) -> Self {
        Self {
            spec,
            replica,
            conn: Mutex::new(None),
            healthy: AtomicBool::new(true),
            requests: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            flaps: AtomicU64::new(0),
            backoff: Mutex::new(Backoff {
                delay: config.initial_backoff,
                blocked_until: None,
            }),
        }
    }

    fn unavailable(&self, reason: impl Into<String>) -> ShardError {
        ShardError::ShardUnavailable {
            addr: self.spec.addr.clone(),
            lo: self.spec.lo,
            hi: self.spec.hi,
            reason: reason.into(),
        }
    }

    /// Records an observed health state, counting the transition.
    fn note_health(&self, healthy: bool) {
        if self.healthy.swap(healthy, Ordering::SeqCst) != healthy {
            self.flaps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Dials the worker, respecting the reconnect backoff: inside the
    /// blocked window this fails immediately (so a dead worker costs one
    /// failed dial per backoff period, not one per request), and each
    /// consecutive failure doubles the window up to the cap.
    fn connect_fresh(&self, config: &RouterConfig) -> Result<Arc<RemoteDefense>, ShardError> {
        {
            let backoff = self
                .backoff
                .lock()
                .expect("backoff mutex is never poisoned");
            if let Some(until) = backoff.blocked_until {
                if Instant::now() < until {
                    return Err(self.unavailable(format!(
                        "in reconnect backoff for {:?} more",
                        until.saturating_duration_since(Instant::now())
                    )));
                }
            }
        }
        match RemoteDefense::connect(Arc::clone(&self.replica), self.spec.addr.as_str()) {
            Ok(conn) => {
                let mut backoff = self
                    .backoff
                    .lock()
                    .expect("backoff mutex is never poisoned");
                backoff.delay = config.initial_backoff;
                backoff.blocked_until = None;
                drop(backoff);
                self.note_health(true);
                Ok(Arc::new(conn))
            }
            Err(error) => {
                let mut backoff = self
                    .backoff
                    .lock()
                    .expect("backoff mutex is never poisoned");
                backoff.blocked_until = Some(Instant::now() + backoff.delay);
                backoff.delay = (backoff.delay * 2).min(config.max_backoff);
                drop(backoff);
                self.note_health(false);
                Err(self.unavailable(format!("connect failed: {error}")))
            }
        }
    }
}

/// The per-worker exchange a [`ShardRouter`] fans out: each leg runs it
/// against its own [`RemoteDefense`] connection, possibly twice (hedging).
type Exchange<T> = Arc<dyn Fn(&RemoteDefense) -> Result<T, ServeError> + Send + Sync>;

/// Runs one exchange on its own thread so the caller can time it out (for
/// hedging) without abandoning the request mid-frame.
fn spawn_exchange<T: Send + 'static>(
    run: Exchange<T>,
    conn: Arc<RemoteDefense>,
    tx: mpsc::Sender<(Result<T, ServeError>, Arc<RemoteDefense>)>,
) {
    std::thread::spawn(move || {
        let result = run(&conn);
        // A losing hedge finds the receiver gone and releases its handle
        // right here; the multiplexed pooled connection itself lives on in
        // the pool, where the demultiplexer keeps late responses routed by
        // request id instead of poisoning the stream.
        let _ = tx.send((result, conn));
    });
}

/// A [`Defense`] that scatters `server_outputs` over a worker pool and
/// gathers the partial maps back into the full answer.
///
/// The client-side stages (`client_features`, the secret selector,
/// `classify`) stay on the local replica; only the body evaluation fans
/// out. See the crate docs for a complete loopback example.
#[derive(Debug)]
pub struct ShardRouter {
    client: Arc<dyn Defense>,
    links: Vec<Arc<WorkerLink>>,
    config: RouterConfig,
    monitor: Option<JoinHandle<()>>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl ShardRouter {
    /// Connects to every worker of `placement` and validates each handshake
    /// against the local replica: `client` itself for `f32` shards, the
    /// int8 pipeline [`QuantizedDefense::quantize`] derives from it for
    /// `int8` shards.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::Placement`] when the placement does not tile
    /// `client`'s ensemble, and [`ShardError::ShardUnavailable`] when a
    /// worker cannot be reached or serves a different pipeline.
    pub fn new(
        client: Arc<dyn Defense>,
        placement: Placement,
        config: RouterConfig,
    ) -> Result<Self, ShardError> {
        if placement.ensemble_size() != client.ensemble_size() {
            return Err(ShardError::Placement(format!(
                "placement tiles an ensemble of {}, the client pipeline has {} bodies",
                placement.ensemble_size(),
                client.ensemble_size()
            )));
        }
        let quantized_replica: Option<Arc<dyn Defense>> =
            if placement.shards().iter().any(|s| s.quantized) {
                Some(Arc::new(QuantizedDefense::quantize(Arc::clone(&client))))
            } else {
                None
            };
        let links: Vec<Arc<WorkerLink>> = placement
            .shards()
            .iter()
            .map(|spec| {
                let replica = if spec.quantized {
                    Arc::clone(
                        quantized_replica
                            .as_ref()
                            .expect("int8 shard implies a quantized replica"),
                    )
                } else {
                    Arc::clone(&client)
                };
                Arc::new(WorkerLink::new(spec.clone(), replica, &config))
            })
            .collect();
        // Eager connect: a misconfigured deployment (wrong worker, wrong
        // checkpoint, wrong precision) fails at construction, not on the
        // first request. The handshake cross-checks label, N and P.
        for link in &links {
            let conn = link.connect_fresh(&config)?;
            *link
                .conn
                .lock()
                .expect("connection mutex is never poisoned") = Some(conn);
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let monitor = config.health_interval.map(|interval| {
            let links = links.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || monitor_loop(&links, &config, interval, &stop))
        });
        Ok(Self {
            client,
            links,
            config,
            monitor,
            stop,
        })
    }

    /// Per-worker counters (requests, hedges fired, health flaps) in
    /// placement order — what the `shard_router` binary surfaces through
    /// [`ensembler_serve::ServerStats::per_shard`].
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.links
            .iter()
            .map(|link| ShardStats {
                addr: link.spec.addr.clone(),
                lo: link.spec.lo as u32,
                hi: link.spec.hi as u32,
                quantized: link.spec.quantized,
                healthy: link.healthy.load(Ordering::SeqCst),
                requests: link.requests.load(Ordering::Relaxed),
                hedges_fired: link.hedges.load(Ordering::Relaxed),
                health_flaps: link.flaps.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// One worker's leg of the fan-out, with hedging and one reconnect
    /// retry. The pooled connection is *shared*: concurrent router callers
    /// clone its handle and multiplex their exchanges over the one
    /// (protocol-v5) socket per worker, each response finding its caller by
    /// request id — no per-caller dialing, no frame interleaving hazard.
    fn ranged<T: Send + 'static>(
        &self,
        link: &Arc<WorkerLink>,
        run: Exchange<T>,
    ) -> Result<T, ShardError> {
        let pooled = link
            .conn
            .lock()
            .expect("connection mutex is never poisoned")
            .clone();
        let conn = match pooled {
            Some(conn) => conn,
            None => {
                let fresh = link.connect_fresh(&self.config)?;
                *link
                    .conn
                    .lock()
                    .expect("connection mutex is never poisoned") = Some(Arc::clone(&fresh));
                fresh
            }
        };
        let (tx, rx) = mpsc::channel();
        spawn_exchange(Arc::clone(&run), conn, tx.clone());
        let first = match self.config.hedge_after {
            Some(delay) => match rx.recv_timeout(delay) {
                Ok(pair) => Some(pair),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(link.unavailable("exchange thread died"))
                }
            },
            None => Some(
                rx.recv()
                    .map_err(|_| link.unavailable("exchange thread died"))?,
            ),
        };
        let (result, conn) = match first {
            Some(pair) => pair,
            None => {
                // The primary stayed silent past the hedge threshold: fire
                // a duplicate on a fresh connection (never the same socket
                // — the primary's response is still owed on it) and take
                // whichever answers first.
                link.hedges.fetch_add(1, Ordering::Relaxed);
                if let Ok(fresh) = link.connect_fresh(&self.config) {
                    spawn_exchange(Arc::clone(&run), fresh, tx.clone());
                }
                rx.recv()
                    .map_err(|_| link.unavailable("all exchanges died"))?
            }
        };
        // Dropping the receiver makes the losing hedge release its handle:
        // on the shared multiplexed connection its late response is routed
        // (and discarded) by request id, never mistaken for the answer to a
        // later request.
        drop(rx);
        match result {
            Ok(value) => {
                link.requests.fetch_add(1, Ordering::Relaxed);
                link.note_health(true);
                // The winner is usually the still-pooled shared connection;
                // only a hedge that won over an empty slot needs pooling.
                let mut slot = link
                    .conn
                    .lock()
                    .expect("connection mutex is never poisoned");
                if slot.is_none() {
                    *slot = Some(conn);
                }
                Ok(value)
            }
            Err(error) => {
                // A transport failure poisons the shared socket for every
                // caller: evict it from the pool (if some other caller has
                // not already replaced it) so nobody else multiplexes onto
                // a dead connection. A typed per-request rejection
                // (`ServeError::Remote`, e.g. `Overloaded`) leaves the
                // connection healthy — other in-flight exchanges on it are
                // unharmed — so it stays pooled.
                let transport_failure = !matches!(error, ServeError::Remote(_));
                if transport_failure {
                    let mut slot = link
                        .conn
                        .lock()
                        .expect("connection mutex is never poisoned");
                    if slot
                        .as_ref()
                        .is_some_and(|pooled| Arc::ptr_eq(pooled, &conn))
                    {
                        *slot = None;
                    }
                    drop(slot);
                    link.note_health(false);
                }
                drop(conn);
                // One immediate reconnect-and-retry covers a worker that was
                // restarted between requests; anything more is a typed
                // ShardUnavailable for the caller.
                let fresh = link.connect_fresh(&self.config).map_err(|retry| {
                    link.unavailable(format!("{error}; reconnect failed: {retry}"))
                })?;
                match run(&fresh) {
                    Ok(value) => {
                        link.requests.fetch_add(1, Ordering::Relaxed);
                        link.note_health(true);
                        let mut slot = link
                            .conn
                            .lock()
                            .expect("connection mutex is never poisoned");
                        if slot.is_none() {
                            *slot = Some(fresh);
                        }
                        Ok(value)
                    }
                    Err(retry_error) => {
                        link.note_health(false);
                        Err(link.unavailable(format!("{error}; retry failed: {retry_error}")))
                    }
                }
            }
        }
    }

    /// Scatters one request to every worker concurrently and gathers the
    /// partial maps in placement order.
    fn scatter<T: Send>(
        &self,
        leg: impl Fn(&Arc<WorkerLink>) -> Result<Vec<T>, ShardError> + Sync,
    ) -> Result<Vec<T>, EnsemblerError> {
        let partials: Vec<Result<Vec<T>, ShardError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .links
                .iter()
                .map(|link| scope.spawn(|| leg(link)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("scatter legs never panic"))
                .collect()
        });
        let mut merged = Vec::with_capacity(self.client.ensemble_size());
        for partial in partials {
            merged.extend(partial?);
        }
        Ok(merged)
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("stop mutex is never poisoned") = true;
        cvar.notify_all();
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

/// The background health monitor: every `interval`, probe each worker with
/// a TCP connect, record the health transition, and redial dropped
/// connection slots (respecting the backoff) so a recovered worker is ready
/// before the next request needs it.
fn monitor_loop(
    links: &[Arc<WorkerLink>],
    config: &RouterConfig,
    interval: Duration,
    stop: &(Mutex<bool>, Condvar),
) {
    let (lock, cvar) = stop;
    loop {
        {
            let stopped = lock.lock().expect("stop mutex is never poisoned");
            let (stopped, _) = cvar
                .wait_timeout_while(stopped, interval, |stopped| !*stopped)
                .expect("stop mutex is never poisoned");
            if *stopped {
                return;
            }
        }
        for link in links {
            let alive = std::net::TcpStream::connect(link.spec.addr.as_str()).is_ok();
            link.note_health(alive);
            if alive {
                let empty = link
                    .conn
                    .lock()
                    .expect("connection mutex is never poisoned")
                    .is_none();
                if empty {
                    if let Ok(conn) = link.connect_fresh(config) {
                        *link
                            .conn
                            .lock()
                            .expect("connection mutex is never poisoned") = Some(conn);
                    }
                }
            }
        }
    }
}

impl Defense for ShardRouter {
    fn config(&self) -> &ResNetConfig {
        self.client.config()
    }

    fn label(&self) -> &str {
        self.client.label()
    }

    /// The local replica's bodies (under the threat model the adversary
    /// owns the server weights wherever they are placed).
    fn server_bodies(&self) -> &[Sequential] {
        self.client.server_bodies()
    }

    fn selected_count(&self) -> usize {
        self.client.selected_count()
    }

    fn precision(&self) -> Precision {
        self.client.precision()
    }

    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.client.client_features(images)
    }

    /// The scatter-gather evaluation: each worker evaluates its placed
    /// range (`f32` shards over `f32` frames, int8 shards over quantized
    /// frames against the derived int8 pipeline), and the partial maps
    /// concatenate back into index order. With an all-`f32` placement the
    /// merged answer is bit-identical to `client.server_outputs`; an int8
    /// shard contributes exactly what the int8 pipeline would contribute
    /// for its indices.
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        self.scatter(|link| {
            let (lo, hi) = (link.spec.lo, link.spec.hi);
            if link.spec.quantized {
                let qf = QTensorBatch::quantize_batch(transmitted);
                let run = Arc::new(move |conn: &RemoteDefense| {
                    conn.server_outputs_quantized_range(&qf, lo, hi)
                });
                let qmaps = self.ranged(link, run)?;
                Ok(qmaps.iter().map(QTensorBatch::dequantize).collect())
            } else {
                let features = transmitted.clone();
                let run = Arc::new(move |conn: &RemoteDefense| {
                    conn.server_outputs_range(&features, lo, hi)
                });
                self.ranged(link, run)
            }
        })
    }

    /// The quantized stage, scattered in quantized frames to every worker
    /// regardless of its placement precision (the response is quantized
    /// either way).
    fn server_outputs_quantized(
        &self,
        transmitted: &QTensorBatch,
    ) -> Result<Vec<QTensorBatch>, EnsemblerError> {
        self.scatter(|link| {
            let (lo, hi) = (link.spec.lo, link.spec.hi);
            let qf = transmitted.clone();
            let run = Arc::new(move |conn: &RemoteDefense| {
                conn.server_outputs_quantized_range(&qf, lo, hi)
            });
            self.ranged(link, run)
        })
    }

    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.client.classify(server_maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_specs_parse_and_round_trip() {
        let spec = ShardSpec::parse("127.0.0.1:7001=0..4").unwrap();
        assert_eq!(
            spec,
            ShardSpec {
                addr: "127.0.0.1:7001".to_string(),
                lo: 0,
                hi: 4,
                quantized: false,
            }
        );
        let spec = ShardSpec::parse("host.example:9=2..3,int8").unwrap();
        assert!(spec.quantized);
        assert_eq!(ShardSpec::parse(&spec.to_string()).unwrap(), spec);

        for bad in [
            "no-equals",
            "noport=0..2",
            "=0..2",
            "h:1=2",
            "h:1=x..2",
            "h:1=0..y",
            "h:1=3..3",
            "h:1=4..2",
            "h:1=0..2,int7",
        ] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn placements_must_tile_the_ensemble_exactly() {
        let spec = |s: &str| ShardSpec::parse(s).unwrap();
        assert!(Placement::new(vec![spec("a:1=0..2"), spec("b:1=2..4")], 4).is_ok());
        // Unsorted input is fine; the placement sorts by range.
        let placement = Placement::new(vec![spec("b:1=2..4"), spec("a:1=0..2")], 4).unwrap();
        assert_eq!(placement.shards()[0].addr, "a:1");

        let gap = Placement::new(vec![spec("a:1=0..1"), spec("b:1=2..4")], 4).unwrap_err();
        assert!(gap.to_string().contains("unserved"), "{gap}");
        let overlap = Placement::new(vec![spec("a:1=0..3"), spec("b:1=2..4")], 4).unwrap_err();
        assert!(overlap.to_string().contains("served twice"), "{overlap}");
        let short = Placement::new(vec![spec("a:1=0..3")], 4).unwrap_err();
        assert!(short.to_string().contains("0..3"), "{short}");
        let long = Placement::new(vec![spec("a:1=0..5")], 4).unwrap_err();
        assert!(long.to_string().contains("ensemble of 4"), "{long}");
        assert!(Placement::new(vec![], 4).is_err());
    }

    #[test]
    fn placement_files_round_trip_with_comments() {
        let text = "# router placement\n\n127.0.0.1:7001=0..2\n  127.0.0.1:7002=2..4,int8  \n";
        let placement = Placement::from_config_str(text, 4).unwrap();
        assert_eq!(placement.shards().len(), 2);
        assert!(placement.shards()[1].quantized);
        assert_eq!(
            Placement::from_config_str(&placement.to_config_string(), 4).unwrap(),
            placement
        );
    }

    #[test]
    fn shard_errors_are_typed_and_informative() {
        let err = ShardError::ShardUnavailable {
            addr: "10.0.0.7:7000".to_string(),
            lo: 4,
            hi: 8,
            reason: "connection refused".to_string(),
        };
        assert!(err.to_string().contains("10.0.0.7:7000"));
        assert!(err.to_string().contains("4..8"));
        let transport: EnsemblerError = err.into();
        assert!(matches!(transport, EnsemblerError::Transport(_)));
    }
}
