//! Stand-alone scatter-gather router: serves a sharded Ensembler behind a
//! normal `DefenseServer`, so clients connect to the router exactly as they
//! would to a single worker.
//!
//! Builds the deterministic demo pipeline (so workers and clients given the
//! same `N P SEED` hold bit-identical replicas), connects to every worker
//! named by the placement, and serves the merged `server_outputs` over TCP
//! until killed, logging a stats line (including per-shard counters)
//! whenever they move.
//!
//! Usage: `cargo run -p ensembler-shard --bin shard_router --release -- \
//!     [ADDR [N] [P] [SEED]] [--model SOURCE] \
//!     --shard HOST:PORT=lo..hi[,int8]... | --placement FILE`
//! Defaults: `127.0.0.1:7900 4 2 17`.
//!
//! `--model SOURCE` replaces the demo replica with any model source the
//! serving tier accepts — `N,P,SEED[,int8]` or a versioned artifact file
//! exported by `export_model` (see `docs/MODEL_ARTIFACTS.md`) — so a sharded
//! deployment rolls a new version by pointing the router and its workers at
//! the same artifact. The ensemble size then comes from the loaded model and
//! the `N P SEED` positionals are ignored.
//!
//! Each worker is an ordinary `serve_defense` process started with the same
//! `N P SEED` (or the same `--model` artifact, for artifact-driven rollouts;
//! plus int8 variants for `int8` shards). The placement must tile `0..N`
//! exactly; `--placement FILE` reads the same one-shard-per-line syntax
//! `Placement::to_config_string` writes. The operator guide, including
//! health-check and hedging tuning, lives in `docs/SERVING.md`.

use ensembler::Defense;
use ensembler_serve::cli::positional;
use ensembler_serve::{demo_pipeline, DefenseServer, ModelSource, ServerConfig};
use ensembler_shard::{Placement, RouterConfig, ShardRouter};
use std::sync::Arc;

/// The command line split four ways: positional arguments, `--shard` specs,
/// an optional `--placement` file and an optional `--model` source.
type ParsedArgs = (Vec<String>, Vec<String>, Option<String>, Option<String>);

/// Splits the command line into positional arguments, `--shard` specs, an
/// optional `--placement` file and an optional `--model` source.
fn parse_args() -> Result<ParsedArgs, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut shards = Vec::new();
    let mut placement_file = None;
    let mut model = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--shard" {
            shards.push(args.next().ok_or("--shard needs HOST:PORT=lo..hi[,int8]")?);
        } else if let Some(spec) = arg.strip_prefix("--shard=") {
            shards.push(spec.to_string());
        } else if arg == "--placement" {
            placement_file = Some(args.next().ok_or("--placement needs a file path")?);
        } else if let Some(path) = arg.strip_prefix("--placement=") {
            placement_file = Some(path.to_string());
        } else if arg == "--model" {
            model = Some(
                args.next()
                    .ok_or("--model needs N,P,SEED[,int8] or an artifact path")?,
            );
        } else if let Some(source) = arg.strip_prefix("--model=") {
            model = Some(source.to_string());
        } else {
            positional.push(arg);
        }
    }
    Ok((positional, shards, placement_file, model))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (args, shard_flags, placement_file, model) = parse_args()?;
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7900".to_string());
    let n: usize = positional(&args, 1, 4);
    let p: usize = positional(&args, 2, 2);
    let seed: u64 = positional(&args, 3, 17);

    // The replica the router scatters for: the demo pipeline by default, or
    // any model source — including a versioned artifact file — with the
    // ensemble size coming from the model itself.
    let (client, label): (Arc<dyn Defense>, String) = match &model {
        Some(source) => {
            let source = ModelSource::parse(source)?;
            let client = source.build()?;
            let label = format!("{} from {source}", client.label());
            (client, label)
        }
        None => (
            Arc::new(demo_pipeline(n, p, seed)?),
            format!("Ensembler (N={n} P={p} seed={seed})"),
        ),
    };
    let n = client.ensemble_size();

    let placement = match (&placement_file, shard_flags.is_empty()) {
        (Some(path), true) => Placement::from_config_str(&std::fs::read_to_string(path)?, n)?,
        (None, false) => Placement::parse(&shard_flags, n)?,
        (Some(_), false) => return Err("use either --shard flags or --placement, not both".into()),
        (None, true) => {
            return Err(
                "a router needs a placement: repeat --shard HOST:PORT=lo..hi[,int8] \
                 or point --placement at a file"
                    .into(),
            )
        }
    };

    let router_config = RouterConfig::default();
    let router = Arc::new(ShardRouter::new(
        Arc::clone(&client),
        placement.clone(),
        router_config,
    )?);

    let server = DefenseServer::bind(
        Arc::clone(&router) as Arc<dyn Defense>,
        addr.as_str(),
        ServerConfig::default(),
    )?;
    println!(
        "routing {label} on {} over {} worker(s):",
        server.local_addr(),
        placement.shards().len()
    );
    for shard in placement.shards() {
        println!("  {shard}");
    }
    println!(
        "hedge after {:?}, health probe every {:?}; stop with Ctrl-C",
        router_config.hedge_after, router_config.health_interval
    );

    let mut last = server.stats();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        let mut stats = server.stats();
        // The frontend server knows nothing of the fan-out behind its
        // pipeline; graft the router's per-shard counters into the snapshot.
        stats.per_shard = router.shard_stats();
        if stats != last {
            println!(
                "{} connections | {} served, {} rejected, {} errors | {} in flight ({} B)",
                stats.connections_accepted,
                stats.requests_served,
                stats.requests_rejected,
                stats.errors_sent,
                stats.inflight_requests,
                stats.inflight_bytes,
            );
            for shard in &stats.per_shard {
                println!(
                    "  shard {} [{}..{}{}]: {} requests, {} hedges, {} flaps, {}",
                    shard.addr,
                    shard.lo,
                    shard.hi,
                    if shard.quantized { ", int8" } else { "" },
                    shard.requests,
                    shard.hedges_fired,
                    shard.health_flaps,
                    if shard.healthy {
                        "healthy"
                    } else {
                        "UNHEALTHY"
                    },
                );
            }
            last = stats;
        }
    }
}
