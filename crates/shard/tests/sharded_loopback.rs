//! End-to-end scatter-gather tests: real sockets, real workers, real
//! failures — all on loopback in one process.
//!
//! The invariant under test is the tentpole one: a [`ShardRouter`] over any
//! valid placement answers `predict` bit-identically to the single-process
//! pipeline (with int8 shards contributing exactly the int8 pipeline's
//! maps), under concurrent clients, and a worker that dies mid-run comes
//! back via reconnect instead of poisoning the deployment.

use ensembler::{Defense, EnsemblerError, Precision, QuantizedDefense};
use ensembler_nn::models::ResNetConfig;
use ensembler_nn::Sequential;
use ensembler_serve::{demo_pipeline, DefenseServer, RemoteDefense, ServerConfig};
use ensembler_shard::{Placement, RouterConfig, ShardRouter};
use ensembler_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 23;

fn full_pipeline() -> Arc<dyn Defense> {
    Arc::new(demo_pipeline(4, 2, SEED).expect("demo pipeline"))
}

/// Starts one `f32` worker holding the full checkpoint.
fn worker_f32() -> DefenseServer {
    DefenseServer::bind(full_pipeline(), "127.0.0.1:0", ServerConfig::default())
        .expect("bind worker")
}

/// Starts one int8 worker: the quantized pipeline of the same checkpoint.
fn worker_int8() -> DefenseServer {
    let quantized: Arc<dyn Defense> = Arc::new(QuantizedDefense::quantize(full_pipeline()));
    DefenseServer::bind(quantized, "127.0.0.1:0", ServerConfig::default()).expect("bind worker")
}

/// A router config with hedging and background probing off: every test that
/// asserts exact counters or exact failures opts hedges/probes in itself.
fn quiet_config() -> RouterConfig {
    RouterConfig {
        hedge_after: None,
        health_interval: None,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
    }
}

fn random_images(seed: u64) -> Tensor {
    Tensor::from_fn(&[2, 3, 16, 16], |i| {
        ((i as f32 + seed as f32) * 0.013).sin()
    })
}

fn placement(workers: &[(&DefenseServer, usize, usize, bool)]) -> Placement {
    let specs: Vec<String> = workers
        .iter()
        .map(|(server, lo, hi, int8)| {
            format!(
                "{}={lo}..{hi}{}",
                server.local_addr(),
                if *int8 { ",int8" } else { "" }
            )
        })
        .collect();
    Placement::parse(&specs, 4).expect("valid placement")
}

/// The single-process reference for a mixed placement: `f32` indices come
/// from the plain pipeline, int8 indices from the quantized one.
fn mixed_reference(
    pipeline: &Arc<dyn Defense>,
    images: &Tensor,
    int8_ranges: &[(usize, usize)],
) -> Tensor {
    let quantized = QuantizedDefense::quantize(Arc::clone(pipeline));
    let transmitted = pipeline.client_features(images).expect("client features");
    let mut maps = pipeline.server_outputs(&transmitted).expect("f32 maps");
    let qmaps = quantized.server_outputs(&transmitted).expect("int8 maps");
    for &(lo, hi) in int8_ranges {
        maps[lo..hi].clone_from_slice(&qmaps[lo..hi]);
    }
    pipeline.classify(&maps).expect("classify")
}

#[test]
fn two_and_four_worker_f32_placements_are_bit_identical_to_one_process() {
    let pipeline = full_pipeline();
    let images = random_images(1);
    let expected = pipeline.predict(&images).expect("single-process predict");

    let workers: Vec<DefenseServer> = (0..4).map(|_| worker_f32()).collect();
    for ranges in [vec![(0, 2), (2, 4)], vec![(0, 1), (1, 2), (2, 3), (3, 4)]] {
        let specs: Vec<(&DefenseServer, usize, usize, bool)> = ranges
            .iter()
            .enumerate()
            .map(|(k, &(lo, hi))| (&workers[k], lo, hi, false))
            .collect();
        let router = ShardRouter::new(Arc::clone(&pipeline), placement(&specs), quiet_config())
            .expect("router");
        assert_eq!(router.predict(&images).expect("sharded predict"), expected);

        let stats = router.shard_stats();
        assert_eq!(stats.len(), ranges.len());
        for (shard, &(lo, hi)) in stats.iter().zip(&ranges) {
            assert_eq!((shard.lo as usize, shard.hi as usize), (lo, hi));
            assert_eq!(shard.requests, 1, "one range request per worker");
            assert_eq!(shard.hedges_fired, 0);
            assert!(shard.healthy);
        }
    }
}

#[test]
fn mixed_precision_placements_merge_the_expected_maps() {
    let pipeline = full_pipeline();
    let images = random_images(2);
    let f32_worker = worker_f32();
    let int8_worker = worker_int8();

    let router = ShardRouter::new(
        Arc::clone(&pipeline),
        placement(&[(&f32_worker, 0, 2, false), (&int8_worker, 2, 4, true)]),
        quiet_config(),
    )
    .expect("router");

    let expected = mixed_reference(&pipeline, &images, &[(2, 4)]);
    assert_eq!(router.predict(&images).expect("mixed predict"), expected);

    // The merged maps themselves partition per placement precision.
    let transmitted = pipeline.client_features(&images).expect("client features");
    let merged = router.server_outputs(&transmitted).expect("fan-out");
    let quantized = QuantizedDefense::quantize(Arc::clone(&pipeline));
    assert_eq!(
        merged[..2],
        pipeline.server_outputs(&transmitted).expect("f32")[..2]
    );
    assert_eq!(
        merged[2..],
        quantized.server_outputs(&transmitted).expect("int8")[2..]
    );
    assert!(router.shard_stats().iter().all(|s| s.healthy));
}

#[test]
fn concurrent_clients_through_a_router_frontend_stay_bit_identical() {
    let pipeline = full_pipeline();
    let workers = [worker_f32(), worker_int8(), worker_f32(), worker_int8()];
    let router = Arc::new(
        ShardRouter::new(
            Arc::clone(&pipeline),
            placement(&[
                (&workers[0], 0, 1, false),
                (&workers[1], 1, 2, true),
                (&workers[2], 2, 3, false),
                (&workers[3], 3, 4, true),
            ]),
            quiet_config(),
        )
        .expect("router"),
    );
    // The shard_router binary's architecture: the merged pipeline served
    // behind a perfectly ordinary DefenseServer.
    let frontend = DefenseServer::bind(
        Arc::clone(&router) as Arc<dyn Defense>,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind frontend");
    let frontend_addr = frontend.local_addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|client_id| {
                let pipeline = Arc::clone(&pipeline);
                scope.spawn(move || {
                    let remote = RemoteDefense::connect(Arc::clone(&pipeline), frontend_addr)
                        .expect("connect");
                    for round in 0..3u64 {
                        let images = random_images(10 + client_id * 7 + round);
                        let expected = mixed_reference(&pipeline, &images, &[(1, 2), (3, 4)]);
                        assert_eq!(
                            remote.predict(&images).expect("remote sharded predict"),
                            expected,
                            "client {client_id} round {round}"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });

    let stats = frontend.shutdown();
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(stats.requests_served, 12);
    let shard_requests: u64 = router.shard_stats().iter().map(|s| s.requests).sum();
    assert_eq!(
        shard_requests,
        4 * 12,
        "every request fanned out to all four workers"
    );
}

#[test]
fn a_killed_worker_is_a_typed_error_and_recovers_via_reconnect() {
    let pipeline = full_pipeline();
    let images = random_images(3);
    let expected = pipeline.predict(&images).expect("single-process predict");

    let stable = worker_f32();
    let doomed = worker_f32();
    let doomed_addr = doomed.local_addr();
    let router = ShardRouter::new(
        Arc::clone(&pipeline),
        placement(&[(&stable, 0, 2, false), (&doomed, 2, 4, false)]),
        quiet_config(),
    )
    .expect("router");
    assert_eq!(router.predict(&images).expect("healthy predict"), expected);

    // Kill the second worker mid-run: the next request must degrade into a
    // typed ShardUnavailable transport error, never a partial merge.
    doomed.shutdown();
    let error = router.predict(&images).expect_err("dead shard must fail");
    match &error {
        EnsemblerError::Transport(message) => {
            assert!(message.contains("unavailable"), "{message}");
            assert!(message.contains("2..4"), "{message}");
        }
        other => panic!("expected a transport error, got {other:?}"),
    }
    let doomed_stats = &router.shard_stats()[1];
    assert!(!doomed_stats.healthy);
    assert!(doomed_stats.health_flaps >= 1);

    // Restart a bit-identical worker on the same address (std listeners set
    // SO_REUSEADDR, so the port is immediately rebindable); the router's
    // on-demand reconnect picks it up once the backoff window passes.
    let _revived = DefenseServer::bind(full_pipeline(), doomed_addr, ServerConfig::default())
        .expect("rebind worker");
    let mut recovered = None;
    for _ in 0..100 {
        match router.predict(&images) {
            Ok(logits) => {
                recovered = Some(logits);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert_eq!(
        recovered.expect("router reconnects after the worker returns"),
        expected
    );
    let doomed_stats = &router.shard_stats()[1];
    assert!(doomed_stats.healthy);
    assert!(doomed_stats.health_flaps >= 2, "down and back up");
}

#[test]
fn the_health_monitor_probes_workers_and_repopulates_connections() {
    let pipeline = full_pipeline();
    let a = worker_f32();
    let b = worker_f32();
    let b_addr = b.local_addr();
    let config = RouterConfig {
        health_interval: Some(Duration::from_millis(25)),
        ..quiet_config()
    };
    let router = ShardRouter::new(
        Arc::clone(&pipeline),
        placement(&[(&a, 0, 2, false), (&b, 2, 4, false)]),
        config,
    )
    .expect("router");

    let wait_for_health = |want: bool| {
        for _ in 0..200 {
            if router.shard_stats()[1].healthy == want {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("worker b never became healthy={want}");
    };

    b.shutdown();
    wait_for_health(false);
    let _revived =
        DefenseServer::bind(full_pipeline(), b_addr, ServerConfig::default()).expect("rebind");
    wait_for_health(true);
    assert!(router.shard_stats()[1].health_flaps >= 2);

    // The monitor re-dialed for us: the first predict after recovery works.
    let images = random_images(4);
    assert_eq!(
        router.predict(&images).expect("predict after recovery"),
        pipeline.predict(&images).expect("reference")
    );
}

/// A [`Defense`] that stalls its first `k` range evaluations — the slow
/// (but alive) worker a hedged retry is for.
#[derive(Debug)]
struct StallingDefense {
    inner: Arc<dyn Defense>,
    stalls_left: AtomicU64,
    stall: Duration,
    entered: AtomicBool,
}

impl StallingDefense {
    fn maybe_stall(&self) {
        self.entered.store(true, Ordering::SeqCst);
        if self
            .stalls_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            std::thread::sleep(self.stall);
        }
    }
}

impl Defense for StallingDefense {
    fn config(&self) -> &ResNetConfig {
        self.inner.config()
    }
    fn label(&self) -> &str {
        self.inner.label()
    }
    fn server_bodies(&self) -> &[Sequential] {
        self.inner.server_bodies()
    }
    fn selected_count(&self) -> usize {
        self.inner.selected_count()
    }
    fn precision(&self) -> Precision {
        self.inner.precision()
    }
    fn client_features(&self, images: &Tensor) -> Result<Tensor, EnsemblerError> {
        self.inner.client_features(images)
    }
    fn server_outputs(&self, transmitted: &Tensor) -> Result<Vec<Tensor>, EnsemblerError> {
        self.inner.server_outputs(transmitted)
    }
    fn server_outputs_range(
        &self,
        transmitted: &Tensor,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Tensor>, EnsemblerError> {
        self.maybe_stall();
        self.inner.server_outputs_range(transmitted, lo, hi)
    }
    fn classify(&self, server_maps: &[Tensor]) -> Result<Tensor, EnsemblerError> {
        self.inner.classify(server_maps)
    }
}

#[test]
fn hedged_requests_beat_a_stalled_worker_with_first_response_wins() {
    let pipeline = full_pipeline();
    let images = random_images(5);
    let expected = pipeline.predict(&images).expect("single-process predict");

    let fast = worker_f32();
    // One worker stalls exactly its first range evaluation for far longer
    // than the hedge threshold; the hedged duplicate (a fresh connection,
    // second evaluation, no stall left) wins the race.
    let stalling: Arc<dyn Defense> = Arc::new(StallingDefense {
        inner: full_pipeline(),
        stalls_left: AtomicU64::new(1),
        stall: Duration::from_millis(1500),
        entered: AtomicBool::new(false),
    });
    let slow = DefenseServer::bind(stalling, "127.0.0.1:0", ServerConfig::default())
        .expect("bind stalling worker");

    let config = RouterConfig {
        hedge_after: Some(Duration::from_millis(100)),
        ..quiet_config()
    };
    let router = ShardRouter::new(
        Arc::clone(&pipeline),
        placement(&[(&fast, 0, 2, false), (&slow, 2, 4, false)]),
        config,
    )
    .expect("router");

    assert_eq!(router.predict(&images).expect("hedged predict"), expected);
    let stats = router.shard_stats();
    assert_eq!(stats[0].hedges_fired, 0, "the fast worker is never hedged");
    assert!(
        stats[1].hedges_fired >= 1,
        "the stalled worker's request was hedged"
    );
    assert!(stats[1].healthy);
    // And the deployment is still fully serviceable afterwards.
    assert_eq!(router.predict(&images).expect("follow-up"), expected);
}

#[test]
fn a_router_refuses_to_start_against_a_dead_or_mismatched_worker() {
    let pipeline = full_pipeline();
    // Dead: nothing listens here (bind-then-drop guarantees a free port).
    let dead_addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let specs = vec![format!("{dead_addr}=0..4")];
    let err = ShardRouter::new(
        Arc::clone(&pipeline),
        Placement::parse(&specs, 4).expect("placement"),
        quiet_config(),
    )
    .expect_err("dead worker must fail construction");
    assert!(err.to_string().contains("unavailable"), "{err}");

    // Mismatched: the worker serves a different checkpoint (other seed);
    // the handshake's label/N/P cross-check... label and N/P match, but a
    // *precision* mismatch is structural: an f32 placement pointed at an
    // int8 worker fails the label check outright.
    let int8 = worker_int8();
    let specs = vec![format!("{}=0..4", int8.local_addr())];
    let err = ShardRouter::new(
        Arc::clone(&pipeline),
        Placement::parse(&specs, 4).expect("placement"),
        quiet_config(),
    )
    .expect_err("precision mismatch must fail construction");
    assert!(err.to_string().contains("does not match"), "{err}");
}
