//! A self-contained markdown link checker over `README.md` and `docs/`:
//! every relative link target must exist on disk (the build environment has
//! no network, so external URLs are only sanity-checked for scheme). CI runs
//! this as its link-check step.

use std::path::{Path, PathBuf};

/// Collects `README.md` plus every `.md` file directly under `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|ext| ext == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(
        files.len() >= 4,
        "expected README + at least ARCHITECTURE, PERFORMANCE and WIRE_PROTOCOL under docs/, found {files:?}"
    );
    files
}

/// Extracts inline `[text](target)` links, skipping fenced code blocks.
fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find "](", then read to the matching ")".
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + close].trim().to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

#[test]
fn every_relative_markdown_link_resolves() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().expect("markdown file has a parent");
        for link in extract_links(&text) {
            // External URLs and pure intra-document anchors are out of scope
            // for an offline checker.
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.starts_with('#')
            {
                continue;
            }
            let target = link.split('#').next().unwrap_or("");
            if target.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(target).exists() {
                broken.push(format!("{}: ({link})", file.display()));
            }
        }
    }
    assert!(
        checked >= 5,
        "link extraction found suspiciously few relative links ({checked}); parser regression?"
    );
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extraction_handles_the_basics() {
    let sample = "see [a](docs/A.md) and [b](https://x.invalid/y) \
                  and [c](B.md#frag)\n```\n[not](a-link.md)\n```\n";
    let links = extract_links(sample);
    assert_eq!(links, vec!["docs/A.md", "https://x.invalid/y", "B.md#frag"]);
}
