//! A self-contained markdown freshness checker over `README.md` and
//! `docs/`: every relative link target must exist on disk (the build
//! environment has no network, so external URLs are only sanity-checked for
//! scheme), and every mention of a repository code path — `crates/...`,
//! `examples/...`, `tests/...`, `docs/...`, `.github/...`, in prose,
//! backticks or fenced blocks — must name something that actually exists,
//! so refactors cannot quietly strand the documentation. CI runs this as
//! its link-check step.

use std::path::{Path, PathBuf};

/// Collects `README.md` plus every `.md` file directly under `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|ext| ext == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(
        files.len() >= 4,
        "expected README + at least ARCHITECTURE, PERFORMANCE and WIRE_PROTOCOL under docs/, found {files:?}"
    );
    files
}

/// Extracts inline `[text](target)` links, skipping fenced code blocks.
fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find "](", then read to the matching ")".
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + close].trim().to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

#[test]
fn every_relative_markdown_link_resolves() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().expect("markdown file has a parent");
        for link in extract_links(&text) {
            // External URLs and pure intra-document anchors are out of scope
            // for an offline checker.
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.starts_with('#')
            {
                continue;
            }
            let target = link.split('#').next().unwrap_or("");
            if target.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(target).exists() {
                broken.push(format!("{}: ({link})", file.display()));
            }
        }
    }
    assert!(
        checked >= 5,
        "link extraction found suspiciously few relative links ({checked}); parser regression?"
    );
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n{}",
        broken.join("\n")
    );
}

/// Extracts every token that looks like a repository code path: it starts
/// with one of the tracked top-level prefixes and contains a `/`. Tokens
/// with placeholder characters (`<`, `*`, `…`) are skipped — they are
/// templates, not paths.
fn extract_code_paths(markdown: &str) -> Vec<String> {
    const PREFIXES: [&str; 5] = ["crates/", "examples/", "tests/", "docs/", ".github/"];
    let mut paths = Vec::new();
    for raw in markdown.split(|c: char| {
        c.is_whitespace() || matches!(c, '(' | ')' | '[' | ']' | '`' | '"' | '|' | ',' | ';')
    }) {
        // Strip markdown emphasis wrappers (`**path**`, `_path_`) so styled
        // mentions stay covered; only *interior* wildcards mark a template.
        let raw = raw.trim_matches(['*', '_']);
        // `path.rs::item` names an item inside a file; check the file part.
        let raw = raw.split("::").next().unwrap_or(raw);
        let token = raw.trim_end_matches(['.', ':', '…', '—']);
        if !PREFIXES.iter().any(|prefix| token.starts_with(prefix)) {
            continue;
        }
        if !token.contains('/') || token.contains(['<', '>', '*', '…']) {
            continue;
        }
        paths.push(token.to_string());
    }
    paths
}

#[test]
fn every_mentioned_code_path_exists() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stale = Vec::new();
    let mut checked = 0usize;
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        for path in extract_code_paths(&text) {
            checked += 1;
            if !root.join(&path).exists() {
                stale.push(format!("{}: {path}", file.display()));
            }
        }
    }
    assert!(
        checked >= 10,
        "code-path extraction found suspiciously few mentions ({checked}); parser regression?"
    );
    assert!(
        stale.is_empty(),
        "documentation mentions code paths that do not exist:\n{}",
        stale.join("\n")
    );
}

#[test]
fn code_path_extraction_handles_the_basics() {
    let sample = "see `crates/serve/src/protocol.rs` and (docs/SERVING.md), \
                  the template crates/<x>/src/<y>.rs is skipped, \
                  the glob crates/*/src is skipped, \
                  **docs/ARCHITECTURE.md** is bold but still checked, \
                  the router tier lives in crates/shard/src/lib.rs, \
                  tests/markdown_links.rs ends a sentence. \
                  .github/workflows/ci.yml runs it; plain words stay out.";
    let paths = extract_code_paths(sample);
    assert_eq!(
        paths,
        vec![
            "crates/serve/src/protocol.rs",
            "docs/SERVING.md",
            "docs/ARCHITECTURE.md",
            "crates/shard/src/lib.rs",
            "tests/markdown_links.rs",
            ".github/workflows/ci.yml",
        ]
    );
}

#[test]
fn link_extraction_handles_the_basics() {
    let sample = "see [a](docs/A.md) and [b](https://x.invalid/y) \
                  and [c](B.md#frag)\n```\n[not](a-link.md)\n```\n";
    let links = extract_links(sample);
    assert_eq!(links, vec!["docs/A.md", "https://x.invalid/y", "B.md#frag"]);
}
