//! Integration tests for the latency model (Table III shape) and the baseline
//! defence implementations used by Table II.

use ensembler_suite::core::{Defense, DefenseKind, EvalConfig, SinglePipeline, TrainConfig};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::latency::{
    estimate_ensembler, estimate_stamp, estimate_standard_ci, DeploymentProfile,
};
use ensembler_suite::nn::models::ResNetConfig;

#[test]
fn table3_shape_holds_for_the_paper_configuration() {
    let config = ResNetConfig::paper_resnet18(10, 32, true);
    let deployment = DeploymentProfile::paper_testbed();
    let standard = estimate_standard_ci(&config, 128, &deployment);
    let ensembler = estimate_ensembler(&config, 128, 10, 4, &deployment);
    let stamp = estimate_stamp(&config, 128, &deployment);

    // Who wins and by roughly what factor (the paper's qualitative claims):
    // Ensembler adds only a few percent; STAMP is two orders of magnitude
    // slower; communication dominates both CI deployments.
    assert!(ensembler.total() > standard.total());
    assert!(ensembler.overhead_vs(&standard) < 0.2);
    assert!(stamp.total() / standard.total() > 30.0);
    assert!(standard.communication_s > standard.client_s + standard.server_s * 0.5);
}

#[test]
fn every_baseline_defense_trains_and_evaluates() {
    let data = SyntheticSpec::tiny_for_tests().generate(6);
    let config = ResNetConfig::tiny_for_tests();
    let train_cfg = TrainConfig {
        epochs_stage1: 2,
        epochs_stage3: 2,
        batch_size: 8,
        learning_rate: 0.05,
        lambda: 0.5,
        sigma: 0.1,
        seed: 6,
    };
    let defenses = [
        DefenseKind::NoDefense,
        DefenseKind::AdditiveNoise { sigma: 0.1 },
        DefenseKind::Shredder {
            sigma: 0.1,
            expansion: 1.0,
        },
        DefenseKind::Dropout { probability: 0.3 },
    ];
    for (i, kind) in defenses.into_iter().enumerate() {
        let mut pipeline =
            SinglePipeline::new(config.clone(), kind, 50 + i as u64).expect("valid configuration");
        let losses = pipeline
            .train_supervised(&data.train, &train_cfg)
            .expect("training succeeds");
        assert_eq!(losses.len(), train_cfg.epochs_stage1);
        let acc = pipeline
            .evaluate(&data.test, &EvalConfig::default())
            .expect("evaluation succeeds");
        assert!((0.0..=1.0).contains(&acc), "{kind:?} accuracy {acc}");
    }
}

#[test]
fn latency_model_is_monotone_in_ensemble_size() {
    let config = ResNetConfig::paper_resnet18(10, 32, true);
    let deployment = DeploymentProfile::paper_testbed();
    let mut previous = 0.0f64;
    for n in [1usize, 2, 4, 8, 16, 32] {
        let t = estimate_ensembler(&config, 128, n, 1, &deployment);
        assert!(
            t.total() >= previous,
            "latency must not decrease when the ensemble grows (N = {n})"
        );
        previous = t.total();
    }
}
