//! Integration tests spanning the whole stack: data generation, three-stage
//! training, split inference over the wire format, and the model inversion
//! attack against both an unprotected pipeline and Ensembler.

use ensembler_suite::attack::{attack_adaptive, attack_single_pipeline, AttackConfig};
use ensembler_suite::core::{
    Defense, DefenseKind, EnsemblerTrainer, SinglePipeline, SplitFeatures, TrainConfig,
};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::metrics::{accuracy, psnr, ssim};
use ensembler_suite::nn::models::ResNetConfig;

fn tiny_train_config() -> TrainConfig {
    TrainConfig {
        epochs_stage1: 3,
        epochs_stage3: 4,
        batch_size: 8,
        learning_rate: 0.05,
        lambda: 1.0,
        sigma: 0.1,
        seed: 11,
    }
}

#[test]
fn three_stage_training_learns_something_on_synthetic_data() {
    let data = SyntheticSpec::tiny_for_tests().generate(1);
    let trainer = EnsemblerTrainer::new(ResNetConfig::tiny_for_tests(), tiny_train_config());
    let trained = trainer.train(3, 2, &data.train).expect("training succeeds");
    let report = trained.report().clone();

    // Stage-3 cross-entropy stays finite and its best epoch is no worse than
    // the first one (a handful of epochs on a tiny dataset jitters, so we do
    // not demand strict monotonicity).
    assert!(report.stage3_losses.iter().all(|l| l.is_finite()));
    let first = report.stage3_losses[0];
    let best = report
        .stage3_losses
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    assert!(
        best <= first * 1.05,
        "stage-3 loss should improve at some point: {:?}",
        report.stage3_losses
    );
    // The pipeline classifies at least at random-chance level on training data.
    let chance = 1.0 / data.train.num_classes() as f32;
    assert!(
        report.train_accuracy >= chance * 0.8,
        "train accuracy {} below chance {chance}",
        report.train_accuracy
    );
}

#[test]
fn split_inference_over_the_wire_matches_local_inference() {
    let data = SyntheticSpec::tiny_for_tests().generate(2);
    let trainer = EnsemblerTrainer::new(ResNetConfig::tiny_for_tests(), tiny_train_config());
    let pipeline = trainer
        .train(2, 1, &data.train)
        .expect("training succeeds")
        .into_pipeline();

    let (images, labels) = data.test.batch(0, 4);

    // Local end-to-end prediction.
    let local_logits = pipeline.predict(&images).expect("prediction succeeds");

    // The same computation, but shipping the features through the wire format.
    let transmitted = pipeline.client_features(&images).expect("client features");
    let payload = SplitFeatures::new(transmitted);
    let received = payload.round_trip().expect("wire round trip succeeds");
    let maps = pipeline.server_outputs(&received).expect("server outputs");
    let remote_logits = pipeline.classify(&maps).expect("classification succeeds");

    for (a, b) in local_logits.data().iter().zip(remote_logits.data()) {
        assert!((a - b).abs() < 1e-5, "wire format must not change results");
    }
    let _ = accuracy(&remote_logits, &labels);
}

#[test]
fn ensembler_defends_at_least_as_well_as_an_unprotected_split() {
    let data = SyntheticSpec::tiny_for_tests().generate(3);
    let config = ResNetConfig::tiny_for_tests();
    let train_cfg = tiny_train_config();
    let attack_cfg = AttackConfig {
        shadow_epochs: 3,
        decoder_epochs: 3,
        batch_size: 8,
        learning_rate: 0.05,
        seed: 3,
    };
    let (private_images, _) = data.test.batch(0, 4);

    // Unprotected victim.
    let mut unprotected = SinglePipeline::new(config.clone(), DefenseKind::NoDefense, 8)
        .expect("valid configuration");
    unprotected
        .train_supervised(&data.train, &train_cfg)
        .expect("training succeeds");
    let unprotected_outcome =
        attack_single_pipeline(&unprotected, &data.train, &private_images, &attack_cfg)
            .expect("attack succeeds");

    // Ensembler victim, attacked adaptively.
    let trainer = EnsemblerTrainer::new(config, train_cfg);
    let protected = trainer
        .train(3, 2, &data.train)
        .expect("training succeeds")
        .into_pipeline();
    let protected_outcome = attack_adaptive(&protected, &data.train, &private_images, &attack_cfg)
        .expect("attack succeeds");

    // At this tiny scale both attacks are noisy, so allow a small margin, but
    // Ensembler must not be meaningfully easier to invert than no defence.
    assert!(
        protected_outcome.ssim <= unprotected_outcome.ssim + 0.15,
        "Ensembler SSIM {} should not exceed the unprotected SSIM {} by a wide margin",
        protected_outcome.ssim,
        unprotected_outcome.ssim
    );
    assert!(protected_outcome.reconstructions.is_finite());
    assert!(unprotected_outcome.reconstructions.is_finite());
}

#[test]
fn reconstruction_metrics_behave_sanely_on_real_pipeline_outputs() {
    let data = SyntheticSpec::tiny_for_tests().generate(4);
    let (images, _) = data.test.batch(0, 2);
    // Identical images: perfect metrics.
    assert!(ssim(&images, &images, 1.0) > 0.999);
    assert_eq!(psnr(&images, &images, 1.0), 60.0);
    // A heavily corrupted copy scores clearly lower.
    let corrupted = images.map(|v| 1.0 - v);
    assert!(ssim(&images, &corrupted, 1.0) < 0.9);
    assert!(psnr(&images, &corrupted, 1.0) < 30.0);
}

#[test]
fn the_secret_selector_is_not_observable_from_server_interactions() {
    // The server sees the transmitted features and is asked to evaluate every
    // body; nothing it receives depends on the client's selection.
    let data = SyntheticSpec::tiny_for_tests().generate(5);
    let config = ResNetConfig::tiny_for_tests();
    let trainer = EnsemblerTrainer::new(config, tiny_train_config());

    let with_p1 = trainer
        .train(3, 1, &data.train)
        .expect("training succeeds")
        .into_pipeline();
    let with_p2 = trainer
        .train(3, 2, &data.train)
        .expect("training succeeds")
        .into_pipeline();

    let (images, _) = data.test.batch(0, 2);
    // Both clients request all N outputs from the server regardless of P.
    let features_p1 = with_p1.client_features(&images).expect("client features");
    let maps_p1 = with_p1
        .server_outputs(&features_p1)
        .expect("server outputs");
    let features_p2 = with_p2.client_features(&images).expect("client features");
    let maps_p2 = with_p2
        .server_outputs(&features_p2)
        .expect("server outputs");
    assert_eq!(maps_p1.len(), 3);
    assert_eq!(maps_p2.len(), 3);
    // The number of possible secret selections the server must brute-force.
    assert_eq!(with_p1.selector().search_space(), 3);
    assert_eq!(with_p2.selector().search_space(), 3);
}
