//! Deployment planning with the analytic latency model: reproduce the shape
//! of Table III and explore how multi-server deployments absorb the O(N)
//! server cost, as discussed in Sec. III-D of the paper.
//!
//! Run with: `cargo run --example latency_planning --release`

use ensembler_suite::core::{DefenseKind, SinglePipeline};
use ensembler_suite::latency::{
    estimate_defense, estimate_ensembler, estimate_ensembler_multi_server, estimate_stamp,
    estimate_standard_ci, DeploymentProfile,
};
use ensembler_suite::nn::models::ResNetConfig;

fn main() {
    let config = ResNetConfig::paper_resnet18(10, 32, true);
    let deployment = DeploymentProfile::paper_testbed();
    let batch = 128;

    let standard = estimate_standard_ci(&config, batch, &deployment);
    let ensembler = estimate_ensembler(&config, batch, 10, 4, &deployment);
    let stamp = estimate_stamp(&config, batch, &deployment);

    println!("seconds per {batch}-image ResNet-18 batch (paper testbed profile)\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "strategy", "client", "server", "comm", "total"
    );
    for (name, t) in [
        ("standard CI", &standard),
        ("Ensembler (N=10,P=4)", &ensembler),
        ("STAMP (encrypted)", &stamp),
    ] {
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            t.client_s,
            t.server_s,
            t.communication_s,
            t.total()
        );
    }
    println!(
        "\nEnsembler overhead over standard CI: {:.1}%",
        ensembler.overhead_vs(&standard) * 100.0
    );

    println!("\nscaling the ensemble across server machines (N=32, P=4):");
    for servers in [1usize, 2, 4, 8] {
        let t = estimate_ensembler_multi_server(&config, batch, 32, 4, servers, &deployment);
        println!(
            "  {servers} server(s): server {:.2} s, communication {:.2} s, total {:.2} s",
            t.server_s,
            t.communication_s,
            t.total()
        );
    }

    // A live pipeline can be estimated directly through the Defense trait:
    // the model reads N, P and the backbone from the object itself.
    let live = SinglePipeline::new(ResNetConfig::cifar10_like(), DefenseKind::NoDefense, 0)
        .expect("valid configuration");
    let t = estimate_defense(&live, batch, 1, &deployment);
    println!(
        "\nlive single-network pipeline (via &dyn Defense): total {:.3} s per {batch}-image batch",
        t.total()
    );
}
