//! The paper's deployment, for real: a `DefenseServer` (the untrusted cloud)
//! and a `RemoteDefense` client (the trusted edge) talking the framed wire
//! protocol over a loopback TCP socket — then the same client code served
//! through the coalescing `InferenceEngine`, unchanged, because
//! `RemoteDefense` is just another `Defense`.
//!
//! Run with: `cargo run --example networked_inference --release`
//! Add `--int8` to serve the int8 backend over protocol-v2 quantized frames
//! (about a quarter of the response bytes). Either way the example
//! cross-checks that both precisions put the same labels on the demo batch,
//! so it doubles as a quantization smoke test.

use ensembler_suite::core::{Defense, EngineConfig, InferenceEngine, QuantizedDefense};
use ensembler_suite::latency::{network_cost, LinkProfile};
use ensembler_suite::serve::{
    demo_pipeline, DefenseServer, RemoteDefense, ServerConfig, WIRE_OVERHEAD,
};
use ensembler_suite::tensor::{Rng, Tensor};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let int8 = std::env::args().any(|a| a == "--int8");

    // Both sides hold the same deterministic weights — the role a shared
    // checkpoint plays in a real deployment.
    let (n, p, seed) = (4, 2, 17);
    let f32_pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    let pipeline: Arc<dyn Defense> = if int8 {
        Arc::new(QuantizedDefense::quantize(Arc::clone(&f32_pipeline)))
    } else {
        Arc::clone(&f32_pipeline)
    };

    // The untrusted cloud: serves all N bodies over TCP.
    let server = DefenseServer::bind(
        Arc::clone(&pipeline),
        "127.0.0.1:0",
        ServerConfig::default(),
    )?;
    println!(
        "cloud: serving {} (N={n}, P={p}) on {}",
        pipeline.label(),
        server.local_addr()
    );

    // The trusted edge: head + noise + secret selector + tail stay local,
    // server_outputs travels the socket.
    let remote = RemoteDefense::connect(Arc::clone(&pipeline), server.local_addr())?;
    println!(
        "edge:  connected, negotiated protocol v{}{}",
        remote.negotiated_version(),
        if remote.uses_quantized_frames() {
            " (quantized frames)"
        } else {
            ""
        }
    );

    let mut rng = Rng::seed_from(99);
    let images = Tensor::from_fn(&[8, 3, 16, 16], |_| rng.uniform(-1.0, 1.0));
    let remote_logits = remote.predict(&images)?;
    let local_logits = pipeline.predict(&images)?;
    assert_eq!(remote_logits, local_logits);
    println!("edge:  batch of 8 predicted over the wire, bit-identical to in-process");

    // Smoke test for the quantized backend: both precisions must label the
    // demo batch identically (whichever one went over the wire).
    assert_eq!(
        remote_logits.argmax_rows(),
        f32_pipeline.predict(&images)?.argmax_rows(),
        "f32 and int8 must agree on the demo labels"
    );
    println!("edge:  f32 and int8 agree on all 8 demo labels");

    // What those requests cost on the wire, from the validated cost model.
    let cost = network_cost(pipeline.config());
    let (upload, ret) = if int8 {
        (
            cost.upload_frame_bytes_q(8, &WIRE_OVERHEAD),
            cost.return_frame_bytes_q(8, n as u64, &WIRE_OVERHEAD),
        )
    } else {
        (
            cost.upload_frame_bytes(8, &WIRE_OVERHEAD),
            cost.return_frame_bytes(8, n as u64, &WIRE_OVERHEAD),
        )
    };
    let link = LinkProfile::paper_lan();
    println!(
        "wire:  {upload} B up + {ret} B down per batch -> {:.1} ms on the paper's LAN",
        link.round_trip_s(upload as f64, ret as f64) * 1e3
    );
    // RemoteDefense is a Defense, so the coalescing engine serves it as-is:
    // many concurrent edge callers, one shared remote connection.
    let engine = Arc::new(InferenceEngine::new(
        Arc::new(RemoteDefense::connect(
            Arc::clone(&pipeline),
            server.local_addr(),
        )?),
        EngineConfig::default(),
    )?);
    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let image =
                        Tensor::from_fn(&[3, 16, 16], |i| ((i + 7 * k) as f32 * 0.01).sin());
                    engine.predict_one(image).expect("remote predict")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!(
        "edge:  {} concurrent callers served through engine + wire; server saw {} requests",
        answers.len(),
        server.stats().requests_served
    );
    Ok(())
}
