//! The paper's deployment, for real: a multi-model `DefenseServer` (the
//! untrusted cloud) serving an f32 and an int8 pipeline from one process,
//! and `RemoteDefense` clients (the trusted edge) picking their model by
//! name over the protocol-v3 handshake — then the same client code served
//! through the coalescing `InferenceEngine`, unchanged, because
//! `RemoteDefense` is just another `Defense`.
//!
//! Run with: `cargo run --example networked_inference --release`
//! Add `--int8` to route the engine-composition section through the int8
//! model and its protocol-v2 quantized frames (about a quarter of the
//! response bytes). Either way the example cross-checks that both models
//! put the same labels on the demo batch, so it doubles as a quantization
//! smoke test.

use ensembler_suite::core::{Defense, EngineConfig, InferenceEngine, QuantizedDefense};
use ensembler_suite::latency::{network_cost, LinkProfile};
use ensembler_suite::serve::{
    demo_pipeline, DefenseServer, ModelRegistry, RemoteDefense, ServerConfig, WIRE_OVERHEAD,
};
use ensembler_suite::tensor::{Rng, Tensor};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let int8_engine_demo = std::env::args().any(|a| a == "--int8");

    // Both sides hold the same deterministic weights — the role a shared
    // checkpoint plays in a real deployment. One process serves the same
    // backbone at both precisions, as two named models.
    let (n, p, seed) = (4, 2, 17);
    let f32_pipeline: Arc<dyn Defense> = Arc::new(demo_pipeline(n, p, seed)?);
    let int8_pipeline: Arc<dyn Defense> =
        Arc::new(QuantizedDefense::quantize(Arc::clone(&f32_pipeline)));

    let config = ServerConfig::default();
    let registry = ModelRegistry::new("f32", Arc::clone(&f32_pipeline), config.engine)?
        .with_model("int8", Arc::clone(&int8_pipeline), config.engine)?;
    let server = DefenseServer::bind_registry(registry, "127.0.0.1:0", config)?;
    println!(
        "cloud: serving models [{}] (N={n}, P={p}) on {}",
        server.registry().names().join(", "),
        server.local_addr()
    );

    // The trusted edge: head + noise + secret selector + tail stay local,
    // server_outputs travels the socket — to the model each client names.
    let mut rng = Rng::seed_from(99);
    let images = Tensor::from_fn(&[8, 3, 16, 16], |_| rng.uniform(-1.0, 1.0));
    let mut logits_by_model = Vec::new();
    for (name, local) in [("f32", &f32_pipeline), ("int8", &int8_pipeline)] {
        let remote = RemoteDefense::connect_model(Arc::clone(local), server.local_addr(), name)?;
        println!(
            "edge:  connected to model {:?}, negotiated protocol v{}{}",
            remote.model().expect("v3 ack echoes the model"),
            remote.negotiated_version(),
            if remote.uses_quantized_frames() {
                " (quantized frames)"
            } else {
                ""
            }
        );
        let remote_logits = remote.predict(&images)?;
        assert_eq!(remote_logits, local.predict(&images)?);
        println!("edge:  batch of 8 over the wire, bit-identical to in-process {name}");
        logits_by_model.push(remote_logits);
    }

    // Smoke test for the quantized backend: both models must label the demo
    // batch identically even though one of them served int8 frames.
    assert_eq!(
        logits_by_model[0].argmax_rows(),
        logits_by_model[1].argmax_rows(),
        "f32 and int8 must agree on the demo labels"
    );
    println!("edge:  f32 and int8 agree on all 8 demo labels");

    // What those requests cost on the wire, from the validated cost model.
    let cost = network_cost(f32_pipeline.config());
    for (name, upload, ret) in [
        (
            "f32",
            cost.upload_frame_bytes(8, &WIRE_OVERHEAD),
            cost.return_frame_bytes(8, n as u64, &WIRE_OVERHEAD),
        ),
        (
            "int8",
            cost.upload_frame_bytes_q(8, &WIRE_OVERHEAD),
            cost.return_frame_bytes_q(8, n as u64, &WIRE_OVERHEAD),
        ),
    ] {
        let link = LinkProfile::paper_lan();
        println!(
            "wire:  {name}: {upload} B up + {ret} B down per batch -> {:.1} ms on the paper's LAN",
            link.round_trip_s(upload as f64, ret as f64) * 1e3
        );
    }

    // RemoteDefense is a Defense, so the coalescing engine serves it as-is:
    // many concurrent edge callers, one shared remote connection to the
    // chosen model.
    let engine_model = if int8_engine_demo { "int8" } else { "f32" };
    let engine_replica = if int8_engine_demo {
        &int8_pipeline
    } else {
        &f32_pipeline
    };
    let engine = Arc::new(InferenceEngine::new(
        Arc::new(RemoteDefense::connect_model(
            Arc::clone(engine_replica),
            server.local_addr(),
            engine_model,
        )?),
        EngineConfig::default(),
    )?);
    let answers: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let image =
                        Tensor::from_fn(&[3, 16, 16], |i| ((i + 7 * k) as f32 * 0.01).sin());
                    engine.predict_one(image).expect("remote predict")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!(
        "edge:  {} concurrent callers served through engine + wire against model {engine_model}",
        answers.len(),
    );

    // Graceful shutdown: in-flight work has drained, the counters survive.
    let stats = server.shutdown();
    println!(
        "cloud: drained and stopped — {} connections, {} requests served, {} rejected",
        stats.connections_accepted, stats.requests_served, stats.requests_rejected
    );
    for model in &stats.per_model {
        println!(
            "cloud:   model {}: {} coalesced requests in {} batches",
            model.model, model.engine.requests_served, model.engine.batches_executed
        );
    }
    Ok(())
}
