//! The Fig. 1 scenario end to end: an adversarial server mounts a model
//! inversion attack against (a) an unprotected split network and (b) an
//! Ensembler-protected one, and we compare how much of the private input it
//! recovers.
//!
//! Run with: `cargo run --example attack_and_defend --release`

use ensembler_suite::attack::{attack_adaptive, attack_single_pipeline, AttackConfig};
use ensembler_suite::core::{
    Defense, DefenseKind, EnsemblerTrainer, EvalConfig, SinglePipeline, TrainConfig,
};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::nn::models::ResNetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticSpec::cifar10_like()
        .with_samples(16, 6)
        .generate(21);
    let config = ResNetConfig::cifar10_like();
    let train_cfg = TrainConfig {
        epochs_stage1: 3,
        epochs_stage3: 4,
        batch_size: 16,
        learning_rate: 0.05,
        lambda: 1.0,
        sigma: 0.1,
        seed: 5,
    };
    let attack_cfg = AttackConfig {
        shadow_epochs: 3,
        decoder_epochs: 4,
        batch_size: 16,
        learning_rate: 0.05,
        seed: 5,
    };
    // The private images the client classifies during inference; the server
    // only ever sees their intermediate features.
    let (private_images, _) = data.test.batch(0, 6);

    // (a) Unprotected split network. Both victims are driven through the
    // same `&dyn Defense` interface from here on.
    let mut unprotected = SinglePipeline::new(config.clone(), DefenseKind::NoDefense, 1)?;
    unprotected.train_supervised(&data.train, &train_cfg)?;
    let unprotected_acc = unprotected.evaluate(&data.test, &EvalConfig::default())?;
    let unprotected_attack =
        attack_single_pipeline(&unprotected, &data.train, &private_images, &attack_cfg)?;

    // (b) Ensembler with N = 4, P = 2.
    let trainer = EnsemblerTrainer::new(config, train_cfg);
    let protected = trainer.train(4, 2, &data.train)?.into_pipeline();
    let protected_acc = protected.evaluate(&data.test, &EvalConfig::default())?;
    let protected_attack = attack_adaptive(&protected, &data.train, &private_images, &attack_cfg)?;

    println!(
        "{:<22} {:>10} {:>8} {:>8}",
        "pipeline", "accuracy", "SSIM", "PSNR"
    );
    println!(
        "{:<22} {:>9.1}% {:>8.3} {:>8.2}",
        "unprotected split",
        unprotected_acc * 100.0,
        unprotected_attack.ssim,
        unprotected_attack.psnr
    );
    println!(
        "{:<22} {:>9.1}% {:>8.3} {:>8.2}",
        "Ensembler (adaptive MIA)",
        protected_acc * 100.0,
        protected_attack.ssim,
        protected_attack.psnr
    );
    println!("\nlower SSIM/PSNR means the attacker reconstructed less of the private input");
    Ok(())
}
