//! Quickstart: train an Ensembler end to end on a small synthetic dataset and
//! inspect what each training stage produced (the walk-through of Fig. 2).
//!
//! Run with: `cargo run --example quickstart --release`
//! Add `--int8` to serve the trained pipeline through the int8 backend.
//! Either way the example cross-checks that both precisions put the same
//! labels on the test set, so it doubles as a quantization smoke test.

use ensembler_suite::core::{Defense, EnsemblerTrainer, EvalConfig, QuantizedDefense, TrainConfig};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::nn::models::ResNetConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let int8_requested = std::env::args().any(|a| a == "--int8");
    // A scaled-down CIFAR-10 stand-in (see DESIGN.md for the substitution).
    let data = SyntheticSpec::cifar10_like()
        .with_samples(16, 6)
        .generate(7);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train.len(),
        data.test.len(),
        data.train.num_classes()
    );

    // N = 4 server networks, the client secretly activates P = 2 of them.
    let ensemble_size = 4;
    let selected = 2;
    let trainer = EnsemblerTrainer::new(
        ResNetConfig::cifar10_like(),
        TrainConfig {
            epochs_stage1: 4,
            epochs_stage3: 6,
            batch_size: 16,
            learning_rate: 0.05,
            lambda: 1.0,
            sigma: 0.1,
            seed: 2024,
        },
    );
    println!("training {ensemble_size} stage-1 networks and the stage-3 client ...");
    let trained = trainer.train(ensemble_size, selected, &data.train)?;

    let report = trained.report().clone();
    for (i, losses) in report.stage1_losses.iter().enumerate() {
        println!(
            "stage 1, network {i}: loss {:.3} -> {:.3}",
            losses.first().copied().unwrap_or(f32::NAN),
            losses.last().copied().unwrap_or(f32::NAN)
        );
    }
    println!(
        "stage 3: cross-entropy {:.3} -> {:.3}, cosine penalty {:.3} -> {:.3}",
        report.stage3_losses.first().copied().unwrap_or(f32::NAN),
        report.stage3_losses.last().copied().unwrap_or(f32::NAN),
        report.stage3_penalties.first().copied().unwrap_or(f32::NAN),
        report.stage3_penalties.last().copied().unwrap_or(f32::NAN),
    );

    let pipeline = trained.into_pipeline();
    println!(
        "secret selector activates {:?} out of {} server networks ({} possible selections)",
        pipeline.selector().active_indices(),
        pipeline.ensemble_size(),
        pipeline.selector().search_space()
    );

    // Smoke test for the quantized backend: both precisions must put the
    // same labels on the demo test set.
    let pipeline: Arc<dyn Defense> = Arc::new(pipeline);
    let int8 = QuantizedDefense::quantize(Arc::clone(&pipeline));
    let (test_images, _) = data.test.batch(0, data.test.len());
    let f32_labels = pipeline.predict(&test_images)?.argmax_rows();
    let int8_labels = int8.predict(&test_images)?.argmax_rows();
    assert_eq!(
        f32_labels, int8_labels,
        "f32 and int8 must agree on the demo labels"
    );
    println!(
        "precision check: f32 and int8 agree on all {} test labels",
        f32_labels.len()
    );

    let serving: &dyn Defense = if int8_requested { &int8 } else { &*pipeline };
    println!(
        "train accuracy {:.1}%, test accuracy {:.1}% ({} inference)",
        report.train_accuracy * 100.0,
        serving.evaluate(&data.test, &EvalConfig::default())? * 100.0,
        if int8_requested { "int8" } else { "f32" },
    );
    Ok(())
}
