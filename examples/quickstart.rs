//! Quickstart: train an Ensembler end to end on a small synthetic dataset and
//! inspect what each training stage produced (the walk-through of Fig. 2).
//!
//! Run with: `cargo run --example quickstart --release`

use ensembler_suite::core::{Defense, EnsemblerTrainer, EvalConfig, TrainConfig};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::nn::models::ResNetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down CIFAR-10 stand-in (see DESIGN.md for the substitution).
    let data = SyntheticSpec::cifar10_like()
        .with_samples(16, 6)
        .generate(7);
    println!(
        "dataset: {} train / {} test images, {} classes",
        data.train.len(),
        data.test.len(),
        data.train.num_classes()
    );

    // N = 4 server networks, the client secretly activates P = 2 of them.
    let ensemble_size = 4;
    let selected = 2;
    let trainer = EnsemblerTrainer::new(
        ResNetConfig::cifar10_like(),
        TrainConfig {
            epochs_stage1: 3,
            epochs_stage3: 4,
            batch_size: 16,
            learning_rate: 0.05,
            lambda: 1.0,
            sigma: 0.1,
            seed: 2024,
        },
    );
    println!("training {ensemble_size} stage-1 networks and the stage-3 client ...");
    let trained = trainer.train(ensemble_size, selected, &data.train)?;

    let report = trained.report().clone();
    for (i, losses) in report.stage1_losses.iter().enumerate() {
        println!(
            "stage 1, network {i}: loss {:.3} -> {:.3}",
            losses.first().copied().unwrap_or(f32::NAN),
            losses.last().copied().unwrap_or(f32::NAN)
        );
    }
    println!(
        "stage 3: cross-entropy {:.3} -> {:.3}, cosine penalty {:.3} -> {:.3}",
        report.stage3_losses.first().copied().unwrap_or(f32::NAN),
        report.stage3_losses.last().copied().unwrap_or(f32::NAN),
        report.stage3_penalties.first().copied().unwrap_or(f32::NAN),
        report.stage3_penalties.last().copied().unwrap_or(f32::NAN),
    );

    let pipeline = trained.into_pipeline();
    println!(
        "secret selector activates {:?} out of {} server networks ({} possible selections)",
        pipeline.selector().active_indices(),
        pipeline.ensemble_size(),
        pipeline.selector().search_space()
    );
    println!(
        "train accuracy {:.1}%, test accuracy {:.1}%",
        report.train_accuracy * 100.0,
        pipeline.evaluate(&data.test, &EvalConfig::default())? * 100.0
    );
    Ok(())
}
