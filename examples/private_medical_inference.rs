//! Domain scenario from the paper's motivation: an edge device holds
//! sensitive face/medical imagery and offloads the heavy layers to an
//! untrusted cloud. This example walks through the complete client/server
//! interaction at the byte level — head inference, noise, wire encoding,
//! server ensemble evaluation, selector, tail — on the CelebA-HQ stand-in.
//!
//! Run with: `cargo run --example private_medical_inference --release`

use ensembler_suite::core::{
    encode_features, Defense, EngineConfig, EnsemblerTrainer, InferenceEngine, SplitFeatures,
    TrainConfig,
};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::metrics::accuracy;
use ensembler_suite::nn::models::ResNetConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Face-attribute classification stands in for any sensitive-image task.
    let data = SyntheticSpec::celeba_hq_like()
        .with_samples(10, 4)
        .generate(33);
    let config = ResNetConfig::celeba_like();
    let trainer = EnsemblerTrainer::new(
        config,
        TrainConfig {
            epochs_stage1: 2,
            epochs_stage3: 3,
            batch_size: 8,
            learning_rate: 0.05,
            lambda: 1.0,
            sigma: 0.1,
            seed: 99,
        },
    );
    let pipeline = trainer.train(4, 2, &data.train)?.into_pipeline();

    // One batch of private patient/user images arrives on the edge device.
    let (images, labels) = data.test.batch(0, 4);

    // Step 1 (client): run the head and add the fixed noise.
    let transmitted = pipeline.client_features(&images)?;
    let payload = SplitFeatures::new(transmitted.clone());
    println!(
        "client uploads {} bytes of intermediate features for {} images",
        payload.byte_len(),
        images.shape()[0]
    );
    // The wire encoding round-trips exactly (what the server receives).
    let received = payload.round_trip()?;
    assert_eq!(received, transmitted);
    let _raw = encode_features(&transmitted); // bytes as they appear on the network

    // Step 2 (server): evaluate every ensemble member on the received
    // features — in parallel, from a shared `&self`.
    let server_maps = pipeline.server_outputs(&received)?;
    println!(
        "server returns {} feature vectors of {} values each",
        server_maps.len(),
        server_maps[0].shape()[1]
    );

    // Step 3 (client): secret selection + tail classification.
    let logits = pipeline.classify(&server_maps)?;
    println!(
        "prediction accuracy on this private batch: {:.0}%",
        accuracy(&logits, &labels) * 100.0
    );
    println!(
        "the server never learns which {} of the {} networks were used ({} possibilities)",
        pipeline.selector().active_count(),
        pipeline.ensemble_size(),
        pipeline.selector().search_space()
    );

    // Production shape: wrap the pipeline in the inference engine and let
    // several edge devices submit single images concurrently. The engine
    // coalesces them into mini-batches; results are identical to the
    // sequential path because inference is immutable.
    let engine = Arc::new(InferenceEngine::new(
        Arc::new(pipeline),
        EngineConfig::default(),
    )?);
    let served: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..images.shape()[0])
            .map(|i| {
                let engine = Arc::clone(&engine);
                let image = images.batch_item(i);
                scope.spawn(move || engine.predict_one(image).expect("engine serves the image"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = engine.stats();
    println!(
        "engine served {} concurrent requests in {} coalesced batch(es); queue drained to {}",
        stats.requests_served, stats.batches_executed, stats.queue_depth
    );
    assert_eq!(served.len(), images.shape()[0]);
    Ok(())
}
