//! Domain scenario from the paper's motivation: an edge device holds
//! sensitive face/medical imagery and offloads the heavy layers to an
//! untrusted cloud. This example walks through the complete client/server
//! interaction at the byte level — head inference, noise, wire encoding,
//! server ensemble evaluation, selector, tail — on the CelebA-HQ stand-in.
//!
//! Run with: `cargo run --example private_medical_inference --release`

use ensembler_suite::core::{encode_features, EnsemblerTrainer, SplitFeatures, TrainConfig};
use ensembler_suite::data::SyntheticSpec;
use ensembler_suite::metrics::accuracy;
use ensembler_suite::nn::models::ResNetConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Face-attribute classification stands in for any sensitive-image task.
    let data = SyntheticSpec::celeba_hq_like().with_samples(10, 4).generate(33);
    let config = ResNetConfig::celeba_like();
    let trainer = EnsemblerTrainer::new(
        config,
        TrainConfig {
            epochs_stage1: 2,
            epochs_stage3: 3,
            batch_size: 8,
            learning_rate: 0.05,
            lambda: 1.0,
            sigma: 0.1,
            seed: 99,
        },
    );
    let mut pipeline = trainer.train(4, 2, &data.train)?.into_pipeline();

    // One batch of private patient/user images arrives on the edge device.
    let (images, labels) = data.test.batch(0, 4);

    // Step 1 (client): run the head and add the fixed noise.
    let transmitted = pipeline.client_features(&images);
    let payload = SplitFeatures::new(transmitted.clone());
    println!(
        "client uploads {} bytes of intermediate features for {} images",
        payload.byte_len(),
        images.shape()[0]
    );
    // The wire encoding round-trips exactly (what the server receives).
    let received = payload.round_trip()?;
    assert_eq!(received, transmitted);
    let _raw = encode_features(&transmitted); // bytes as they appear on the network

    // Step 2 (server): evaluate every ensemble member on the received features.
    let server_maps = pipeline.server_outputs(&received);
    println!(
        "server returns {} feature vectors of {} values each",
        server_maps.len(),
        server_maps[0].shape()[1]
    );

    // Step 3 (client): secret selection + tail classification.
    let logits = pipeline.classify(&server_maps)?;
    println!(
        "prediction accuracy on this private batch: {:.0}%",
        accuracy(&logits, &labels) * 100.0
    );
    println!(
        "the server never learns which {} of the {} networks were used ({} possibilities)",
        pipeline.selector().active_count(),
        pipeline.ensemble_size(),
        pipeline.selector().search_space()
    );
    Ok(())
}
