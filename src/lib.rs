//! Umbrella crate for the Ensembler reproduction workspace.
//!
//! This crate re-exports the individual workspace crates under short module
//! names so that the examples in `examples/` and the integration tests in
//! `tests/` can refer to the whole stack through a single dependency.
//!
//! The actual implementation lives in the member crates:
//!
//! * [`tensor`] — dense NCHW tensor kernel, deterministic RNG, JSON, `par_map`.
//! * [`nn`] — layers with a pure `forward(&self)` / caching
//!   `forward_cached(&mut self)` split and manual backprop.
//! * [`data`] — synthetic datasets standing in for CIFAR-10/100 and CelebA-HQ.
//! * [`metrics`] — SSIM, PSNR and accuracy metrics.
//! * [`ensembler`] — the paper's contribution behind the unified `Defense`
//!   trait (immutable `&self` inference) plus the concurrent
//!   `InferenceEngine`.
//! * [`attack`] — query-free model inversion attacks; victims are any
//!   `&dyn Defense`.
//! * [`latency`] — analytic deployment latency model (Table III), including
//!   `estimate_defense` for live pipelines and the wire-size terms validated
//!   against the real protocol.
//! * [`serve`] — the networked split: framed wire protocol, TCP
//!   `DefenseServer` and the `RemoteDefense` client (see
//!   `docs/ARCHITECTURE.md` and `docs/WIRE_PROTOCOL.md`).
//!
//! # Examples
//!
//! ```
//! use ensembler_suite::tensor::Tensor;
//!
//! let t = Tensor::zeros(&[1, 3, 4, 4]);
//! assert_eq!(t.len(), 48);
//! ```

pub use ensembler as core;
pub use ensembler_attack as attack;
pub use ensembler_data as data;
pub use ensembler_latency as latency;
pub use ensembler_metrics as metrics;
pub use ensembler_nn as nn;
pub use ensembler_serve as serve;
pub use ensembler_tensor as tensor;
